"""Memory+power fusion of layer-boundary evidence.

One metered inference feeds both leak surfaces at once: the session
tees the span stream into the memory channel (RAW-rule boundary
tracking) and the power probe (changepoint segmentation), so a fused
run costs exactly what a memory-only run costs.  The fusion rule is
*cross-validation*: run the RAW tracker at relaxed sensitivity
(``min_support=1`` — every candidate, even ones a single surviving
read/write pair supports) and keep only candidates that land within
``confirm_tol`` cycles of a power segment edge.

Why this beats either channel alone at a matched repeat budget:

* Memory-only at safe sensitivity (``min_support=3``) needs the drop
  channel to deliver three RAW pairs per boundary; at high drop rates
  a boundary's evidence thins below that in a fraction of runs, so the
  consensus estimator buys reliability with extra observation runs.
* Memory-only at relaxed sensitivity forges boundaries (duplication
  and latency jitter fabricate RAW pairs) — ``min_support`` exists
  precisely to suppress those.
* The power trace is tapped before the bus channel (a physically
  separate probe), so its layer-gap edges are independent of bus
  drop/dup noise.  Power edges veto forged RAW candidates, which makes
  the relaxed sensitivity safe, which recovers thinly-supported true
  boundaries — without extra runs.

Power edges are used as a *veto*, not as boundaries in their own
right: on deeper victims (AlexNet) intra-layer pipeline lulls produce
activity gaps longer than the true inter-stage gaps, so unmatched
power edges are not promoted to boundaries unless the caller opts in
with ``augment_unmatched`` (sensible on shallow victims whose power
segmentation is known clean).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.fusion.segment import segment_power_trace
from repro.attacks.robust.boundary import (
    RobustRawBoundaryTracker,
    consensus_boundaries,
)
from repro.device import CoalescingSink, DeviceSession
from repro.errors import ConfigError
from repro.power import PowerModel

__all__ = ["FusedStructureResult", "FusedBoundaryRecovery", "fuse_boundaries"]


@dataclass(frozen=True)
class FusedStructureResult:
    """Outcome of fused memory+power boundary recovery.

    Attributes:
        boundaries: consensus boundary cycles (quorum-filtered over the
            fused per-run lists).
        runs: per-run *fused* boundary cycles (power-confirmed RAW
            candidates, plus augmented power edges when enabled).
        raw_runs: per-run RAW candidates before the power veto, at the
            relaxed sensitivity — the memory channel's unfiltered view.
        power_runs: per-run power segment edges — the power channel's
            independent view.
        quorum: the quorum that filtered the consensus.
        tol: cross-run clustering tolerance, in cycles.
        confirm_tol: RAW-candidate-to-power-edge match tolerance, in
            cycles.
    """

    boundaries: list[int]
    runs: list[list[int]]
    raw_runs: list[list[int]] = field(default_factory=list)
    power_runs: list[list[int]] = field(default_factory=list)
    quorum: int = 1
    tol: int = 0
    confirm_tol: int = 0

    @property
    def num_layers(self) -> int:
        """One recovered layer per consensus boundary."""
        return len(self.boundaries)


class FusedBoundaryRecovery:
    """Checkpointable step/resume runner for fused boundary recovery.

    Mirrors :class:`~repro.attacks.robust.structure.BoundaryRecovery`:
    one ``run:k`` step per observation (each a *single* metered
    inference observed on both channels at once, with a pinned run
    index so kill-and-resume replays identical noise) plus a final
    device-free ``consensus`` step; the state dict is JSON-serialisable
    as-is.

    Parameters are those of :func:`fuse_boundaries`, the thin
    all-steps-in-order driver over this class.
    """

    def __init__(
        self,
        session: DeviceSession,
        runs: int = 1,
        *,
        min_support: int = 1,
        expiry: int = 4096,
        refractory: int | None = None,
        quorum: int | None = None,
        tol: int | None = None,
        confirm_tol: int | None = None,
        seed: int = 0,
        dataflow: str = "output-stationary",
        engine: str = "vectorised",
        power: PowerModel | None = None,
        stage_overhead: int | None = None,
        augment_unmatched: bool = False,
        max_power_segments: int = 64,
    ) -> None:
        if runs < 1:
            raise ConfigError(f"runs must be >= 1, got {runs}")
        if max_power_segments < 1:
            raise ConfigError(
                f"max_power_segments must be >= 1, got {max_power_segments}"
            )
        if quorum is not None and not 1 <= quorum <= runs:
            raise ConfigError(f"quorum must be in [1, {runs}], got {quorum}")
        window = session.channel.latency_window
        self.session = session
        self.runs = runs
        self.min_support = min_support
        self.expiry = expiry
        self.refractory = window if refractory is None else refractory
        self.quorum = quorum if quorum is not None else runs // 2 + 1
        self.tol = max(1, window // 4) if tol is None else tol
        self.seed = seed
        self.engine = engine
        self.power = power if power is not None else PowerModel()
        # The per-stage overhead is a public (datasheet) timing figure,
        # same threat-model footing as the channel's latency window.
        self.stage_overhead = (
            session.device.config.timing.stage_overhead
            if stage_overhead is None
            else stage_overhead
        )
        # A power edge snaps down to its bin start (up to one quantum
        # early) while the RAW cycle jitters by up to the channel
        # latency window — both slacks, plus margin, must fit.
        self.confirm_tol = (
            window + 2 * self.power.quantum
            if confirm_tol is None
            else confirm_tol
        )
        self.augment_unmatched = augment_unmatched
        self.max_power_segments = max_power_segments
        self.producer_refractory = (
            self.refractory if dataflow == "output-stationary" else 0
        )

    def steps(self) -> list[str]:
        """The deterministic step plan for this recovery."""
        return [f"run:{k}" for k in range(self.runs)] + ["consensus"]

    def run_step(self, name: str, state: dict | None = None) -> dict:
        """Execute one named step, returning the updated state dict."""
        state = dict(state or {})
        if name.startswith("run:"):
            return self._step_run(int(name.split(":", 1)[1]), state)
        if name == "consensus":
            return self._step_consensus(state)
        raise ConfigError(f"unknown fused recovery step {name!r}")

    def _fuse(self, raw: list[int], edges: list[int]) -> list[int]:
        """Cross-validate one run's RAW candidates against power edges.

        The veto only applies when the power segmentation is itself
        credible.  Per-bin activity scales with the victim's layer
        widths while the probe's read-out sigma does not, so on a
        victim whose plateaus sit near the noise floor the threshold
        mask shatters into hundreds of slivers.  A segmentation with
        more edges than any plausible layer count (or none at all)
        marks the power channel uninformative at this SNR, and the run
        falls back to the memory channel's view rather than letting a
        degenerate mask veto true boundaries.
        """
        if not edges or len(edges) > self.max_power_segments:
            return list(raw)
        edge_arr = np.asarray(edges, dtype=np.int64)
        fused = [
            int(c)
            for c in raw
            if int(np.min(np.abs(edge_arr - int(c)))) <= self.confirm_tol
        ]
        if self.augment_unmatched:
            raw_arr = np.asarray(raw, dtype=np.int64)
            for e in edges:
                matched = len(raw_arr) and (
                    int(np.min(np.abs(raw_arr - int(e))))
                    <= self.confirm_tol
                )
                if not matched:
                    fused.append(int(e))
            fused.sort()
        return fused

    def _step_run(self, k: int, state: dict) -> dict:
        robust = RobustRawBoundaryTracker(
            min_support=self.min_support,
            expiry=self.expiry,
            refractory=self.refractory,
            producer_refractory=self.producer_refractory,
            engine=self.engine,
        )
        # One inference, two channels: the session tees the span stream
        # into the power probe (pre-bus, noise of its own) and the
        # memory channel feeding the RAW tracker.  Coalescing upstream
        # of the tracker is pure decode throughput (chunking-invariant).
        trace = self.session.observe_power(
            seed=self.seed, sink=CoalescingSink(robust), run=k, power=self.power
        )
        seg = segment_power_trace(trace, stage_overhead=self.stage_overhead)
        raw = [int(c) for c in robust.boundary_cycles]
        edges = [int(e) for e in seg.edges]
        for key, value in (
            ("raw_runs", raw),
            ("power_runs", edges),
            ("runs", self._fuse(raw, edges)),
        ):
            per_run = dict(state.get(key, {}))
            per_run[str(k)] = value
            state[key] = per_run
        return state

    def _step_consensus(self, state: dict) -> dict:
        runs = state.get("runs", {})
        missing = [k for k in range(self.runs) if str(k) not in runs]
        if missing:
            raise ConfigError(
                f"consensus step needs all {self.runs} runs; missing {missing}"
            )
        per_run = [runs[str(k)] for k in range(self.runs)]
        state["boundaries"] = [
            int(b)
            for b in consensus_boundaries(
                per_run, quorum=self.quorum, tol=self.tol
            )
        ]
        return state

    def result(self, state: dict) -> FusedStructureResult:
        """Assemble the final result from a completed state."""
        if "boundaries" not in state:
            state = self._step_consensus(dict(state))
        return FusedStructureResult(
            boundaries=list(state["boundaries"]),
            runs=[list(state["runs"][str(k)]) for k in range(self.runs)],
            raw_runs=[
                list(state["raw_runs"][str(k)]) for k in range(self.runs)
            ],
            power_runs=[
                list(state["power_runs"][str(k)]) for k in range(self.runs)
            ],
            quorum=self.quorum,
            tol=int(self.tol),
            confirm_tol=int(self.confirm_tol),
        )

    def run(self, state: dict | None = None) -> FusedStructureResult:
        """Drive every remaining step in order (the resume path skips
        steps recorded in ``state["steps_done"]``)."""
        state = dict(state or {})
        done = list(state.get("steps_done", []))
        for name in self.steps():
            if name in done:
                continue
            state = self.run_step(name, state)
            done.append(name)
            state["steps_done"] = list(done)
        return self.result(state)


def fuse_boundaries(
    session: DeviceSession,
    runs: int = 1,
    *,
    min_support: int = 1,
    expiry: int = 4096,
    refractory: int | None = None,
    quorum: int | None = None,
    tol: int | None = None,
    confirm_tol: int | None = None,
    seed: int = 0,
    dataflow: str = "output-stationary",
    engine: str = "vectorised",
    power: PowerModel | None = None,
    stage_overhead: int | None = None,
    augment_unmatched: bool = False,
    max_power_segments: int = 64,
) -> FusedStructureResult:
    """Recover layer boundaries by memory+power cross-validation.

    A thin driver over :class:`FusedBoundaryRecovery` (the
    checkpointable step runner); running every step in order
    in-process is bit-identical to driving the steps externally.

    Args:
        session: the metered device session; its channel model decides
            both the bus noise and the power probe's read-out noise.
        runs: observation runs to stack (default 1 — the point of the
            fusion is to reach consensus-grade reliability without a
            repeat budget).
        min_support: RAW hysteresis support per run.  Defaults to the
            *relaxed* setting (1): forged candidates are vetoed by the
            power edges instead of by support counting.
        expiry: candidate expiry window per run, in events.
        refractory: post-commit suppression window per run, in cycles
            (default: the channel's latency window).
        quorum: runs that must agree on a fused boundary (default:
            strict majority, ``runs // 2 + 1``).
        tol: cross-run clustering tolerance in cycles (default: a
            quarter of the latency window).
        confirm_tol: how close a RAW candidate must land to a power
            segment edge to survive the veto, in cycles (default: the
            latency window plus two power quanta — the two channels'
            own slacks).
        seed: seed of the generic observation input.
        dataflow: the victim's (identified) dataflow, forwarded to the
            RAW tracker's producer filter.
        engine: RAW decode engine (``"vectorised"`` or ``"reference"``).
        power: power-proxy coefficients (device-physics model; defaults
            apply).
        stage_overhead: the device's public per-stage overhead in
            cycles, used by the power segmentation (default: read off
            the device's datasheet timing model).
        augment_unmatched: also promote power edges with no nearby RAW
            candidate to boundaries.  Off by default — deep victims'
            intra-layer lulls masquerade as layer gaps on the power
            channel alone.
        max_power_segments: credibility gate for the veto — a run
            whose power segmentation yields more edges than this is
            treated as power-uninformative and keeps its RAW
            candidates unfiltered.
    """
    return FusedBoundaryRecovery(
        session,
        runs,
        min_support=min_support,
        expiry=expiry,
        refractory=refractory,
        quorum=quorum,
        tol=tol,
        confirm_tol=confirm_tol,
        seed=seed,
        dataflow=dataflow,
        engine=engine,
        power=power,
        stage_overhead=stage_overhead,
        augment_unmatched=augment_unmatched,
        max_power_segments=max_power_segments,
    ).run()
