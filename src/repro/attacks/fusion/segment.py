"""Changepoint segmentation of a power-proxy trace into layer windows.

Layer transitions on the accelerator are separated by the pipeline's
fixed per-stage overhead (control, drain, flush) — cycles with *no*
bus or datapath activity.  On the power proxy those show up as runs of
near-zero bins between high-activity plateaus, so the changepoints are
recovered by thresholding into an active/quiet mask and keeping the
onsets of activity after every sufficiently long quiet gap.

Everything here is attacker-legal: the power trace came through the
sanctioned :meth:`~repro.device.DeviceSession.observe_power` surface,
the stage-overhead prior is a public timing (datasheet) parameter, and
the threshold is derived from the observed trace itself so it adapts
to the channel's power-noise floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.power import PowerTrace

__all__ = ["PowerSegmentation", "power_threshold", "segment_power_trace"]


@dataclass(frozen=True)
class PowerSegmentation:
    """Layer windows recovered from one power trace.

    Attributes:
        edges: boundary cycles — onset of each activity segment (the
            first covers the trace start, mirroring the RAW rule's
            trace-start boundary).
        segments: ``(start_cycle, end_cycle)`` of each active window.
        threshold: the active/quiet threshold used (energy units).
        min_gap_bins: quiet bins required to split two segments.
        min_segment_bins: active bins required to keep a segment.
    """

    edges: list[int]
    segments: list[tuple[int, int]]
    threshold: int
    min_gap_bins: int
    min_segment_bins: int

    @property
    def num_layers(self) -> int:
        return len(self.segments)


def power_threshold(samples: np.ndarray) -> int:
    """Data-driven active/quiet threshold for one power trace.

    Quiet bins are a small minority (a few overhead gaps), so an upper
    quartile of the samples sits on the active plateau; a quarter of it
    separates plateau from gap with a wide margin on both sides as long
    as the channel's power-noise sigma stays below ~an eighth of the
    plateau level — the regime where a power probe is useful at all.
    """
    if len(samples) == 0:
        return 1
    plateau = float(np.quantile(samples, 0.75))
    return max(1, int(plateau / 4.0))


def segment_power_trace(
    trace: PowerTrace,
    *,
    threshold: int | None = None,
    min_gap_bins: int | None = None,
    min_segment_bins: int | None = None,
    stage_overhead: int | None = None,
) -> PowerSegmentation:
    """Split one power trace into per-layer activity segments.

    Args:
        trace: the observed power trace.
        threshold: active/quiet bar in energy units
            (default: :func:`power_threshold` of the trace).
        min_gap_bins: consecutive quiet bins required to count as a
            layer gap; shorter lulls (compute-bound tiles, noise dips)
            are bridged.  Defaults from ``stage_overhead``: a gap of
            ``stage_overhead`` cycles fully covers at least
            ``stage_overhead // quantum - 1`` bins.
        min_segment_bins: active bins a segment needs to count as a
            layer (default ``stage_overhead // quantum``, floored at
            1).  Stage tails drain their output at low, flickering
            activity; without the floor, a near-threshold shoulder
            between the drain lull and the true inter-stage gap would
            surface as a phantom layer.
        stage_overhead: the device's public per-stage overhead, used
            only for the two defaults above.
    """
    samples = np.asarray(trace.samples)
    if threshold is None:
        threshold = power_threshold(samples)
    overhead = trace.quantum if stage_overhead is None else stage_overhead
    if min_gap_bins is None:
        min_gap_bins = max(1, overhead // trace.quantum - 1)
    if min_segment_bins is None:
        min_segment_bins = max(1, overhead // trace.quantum)
    if min_gap_bins < 1:
        raise ConfigError(f"min_gap_bins must be >= 1, got {min_gap_bins}")
    if min_segment_bins < 1:
        raise ConfigError(
            f"min_segment_bins must be >= 1, got {min_segment_bins}"
        )

    active = np.flatnonzero(samples > threshold)
    q = trace.quantum
    segments: list[tuple[int, int]] = []
    if len(active):
        # Split the active bins wherever the gap to the previous active
        # bin exceeds the layer-gap bar; each group is one candidate
        # segment, kept only when long enough to be a layer.
        splits = np.flatnonzero(np.diff(active) > min_gap_bins)
        starts = np.concatenate(([0], splits + 1))
        ends = np.concatenate((splits, [len(active) - 1]))
        segments = [
            (int(active[s]) * q, (int(active[e]) + 1) * q - 1)
            for s, e in zip(starts, ends)
            if int(active[e]) - int(active[s]) + 1 >= min_segment_bins
        ]
    return PowerSegmentation(
        edges=[start for start, _ in segments],
        segments=segments,
        threshold=int(threshold),
        min_gap_bins=int(min_gap_bins),
        min_segment_bins=int(min_segment_bins),
    )
