"""``repro.attacks.fusion``: multi-channel (memory+power) attacks.

The memory bus and the power rail leak the same layer structure
through different physics, with *independent* noise: the bus channel
drops, duplicates and delays events; the power probe reads a smoothed
activity envelope through its own sigma/quantisation.  This package
fuses the two — :mod:`segment` recovers layer windows from a power
trace by changepoint detection, and :mod:`estimator` cross-validates
relaxed-sensitivity RAW boundary candidates against the power segment
edges, reaching consensus-grade F1 at a lower observation budget than
the memory channel alone.
"""

from repro.attacks.fusion.estimator import (
    FusedBoundaryRecovery,
    FusedStructureResult,
    fuse_boundaries,
)
from repro.attacks.fusion.segment import (
    PowerSegmentation,
    power_threshold,
    segment_power_trace,
)

__all__ = [
    "FusedBoundaryRecovery",
    "FusedStructureResult",
    "fuse_boundaries",
    "PowerSegmentation",
    "power_threshold",
    "segment_power_trace",
]
