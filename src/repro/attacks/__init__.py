"""Reverse-engineering attacks: network structure (Section 3), weights
via the zero-pruning channel (Section 4), and end-to-end model cloning
combining the two (the Section 2 objective)."""

from repro.attacks.clone import (
    CloneAttack,
    CloneResult,
    clone_model,
    prediction_agreement,
)

__all__ = ["CloneAttack", "clone_model", "prediction_agreement", "CloneResult"]
