"""Per-layer integer enumeration of structural parameters.

Given one layer's observed facts (sizes to block granularity, duration,
transaction count) and its input geometry chained from the previous
layer's candidate, enumerate every (F_conv, S_conv, P_conv, pooling)
assignment satisfying Eq. (1)-(8) and the timing filter — Algorithm 1
steps 3-4.

The search is exhaustive but ordered to prune early:

1. ``F_conv`` ranges over Eq. (5); each value pins the feasible
   ``D_OFM`` interval via the filter-size equation (3).
2. Each ``D_OFM`` pins the few feasible ``W_OFM`` values via the OFM
   size equation (2).
3. ``(S_conv, P_conv)`` enumeration yields ``W_conv``; the timing filter
   (which depends only on ``W_conv``, ``F_conv``, ``D_IFM``, ``D_OFM``)
   rejects most assignments before pooling is ever considered.
4. Pooling parameters are *solved*, not searched: for each
   ``(F_pool, S_pool)`` the ceil-mode width relation pins ``P_pool`` to
   an interval of at most ``ceil(S_pool / 2)`` integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import SolverError
from repro.attacks.structure.constraints import DeviceKnowledge, timing_consistent
from repro.attacks.structure.trace_analysis import SizeRange
from repro.nn.spec import FCGeometry, LayerGeometry

__all__ = [
    "LayerProblem",
    "PracticalityRules",
    "solve_conv_layer",
    "solve_fc_layer",
]


@dataclass(frozen=True)
class PracticalityRules:
    """Canonicalisation rules implicit in the paper's Table 4.

    Eq. (1)-(8) alone admit many structurally redundant assignments
    (paddings that change nothing, oversized overlapping pool windows).
    Every configuration the paper reports obeys the rules below, and
    without them the candidate count explodes by orders of magnitude:

    * ``minimal_conv_padding`` — drop ``P_conv`` values that produce the
      same ``W_conv`` as ``P_conv - 1``: the extra padding ring is dead
      pixels, functionally identical to the smaller padding (this is the
      paper's own redundancy argument for Eq. (7)).
    * ``zero_pool_padding`` — pooling layers use no padding; all 13 rows
      of Table 4 have ``P_pool = 0``.  Disable to fall back to Eq. (8)'s
      weaker ``P_pool < F_pool``.
    * ``minimal_pool_window`` — per ``(W_conv, S_pool)``, keep only the
      smallest ``F_pool`` reaching the observed ``W_OFM``; a larger
      window differs only in how far it hangs off the edge.  Off by
      default because it can drop the true configuration when ceil-mode
      pooling makes two windows equivalent (e.g. both 2x2 and 3x3
      stride-2 pool a 32-wide map to 16).
    * ``exact_pool_division`` — keep only pools whose span divides the
      stride exactly (``(W_conv - F_pool) mod S_pool == 0``).  Every row
      of the paper's Table 4 has this property, and enabling it
      reproduces the paper's per-layer candidate sets most closely; it
      is off by default because ceil-mode accelerators can genuinely run
      inexact configurations.
    * ``pool_window_cap`` — require ``F_pool <= cap_a * S_pool + cap_b``
      (default 2s+2): pooling windows overlap at most their stride plus
      a small margin, ruling out degenerate stride-1 windows that span
      half the feature map.  The cap admits every pool in Table 4
      (including the 4x4/stride-1 of CONV5_4) and SqueezeNet's global
      average pool (F = S = W_conv).
    """

    minimal_conv_padding: bool = True
    zero_pool_padding: bool = True
    minimal_pool_window: bool = False
    exact_pool_division: bool = False
    pool_window_cap: tuple[int, int] | None = (2, 2)

    def pool_window_ok(self, f_pool: int, s_pool: int) -> bool:
        if self.pool_window_cap is None:
            return True
        a, b = self.pool_window_cap
        return f_pool <= a * s_pool + b


@dataclass(frozen=True)
class LayerProblem:
    """One layer's observed facts plus the chained input geometry.

    ``w_ifm``/``d_ifm`` come from the candidate output of the producing
    layer (or from the known network input for the first layer);
    everything else is read off the trace.
    """

    w_ifm: int
    d_ifm: int
    size_ofm: SizeRange
    size_fltr: SizeRange
    duration: int
    read_transactions: int
    write_transactions: int
    final: bool = False

    def __post_init__(self) -> None:
        if self.w_ifm <= 0 or self.d_ifm <= 0:
            raise SolverError(
                f"bad chained input geometry {self.w_ifm}x{self.d_ifm}"
            )


def _w_ofm_candidates(size_ofm: SizeRange, d_ofm: int) -> list[int]:
    """Widths with ``w^2 * d_ofm`` inside the observed OFM size range."""
    lo = math.isqrt(max(0, size_ofm.lo - 1) // d_ofm) if d_ofm else 0
    hi = math.isqrt(size_ofm.hi // d_ofm)
    return [
        w
        for w in range(max(1, lo), hi + 1)
        if size_ofm.contains(w * w * d_ofm)
    ]


def _pool_paddings(
    w_conv: int, w_ofm: int, f_pool: int, s_pool: int
) -> list[int]:
    """P_pool values with ``ceil((W_conv - F_pool + 2P)/S) + 1 == W_ofm``.

    The ceil-mode relation holds iff
    ``(W_ofm - 2) * S < W_conv - F_pool + 2P <= (W_ofm - 1) * S`` with a
    non-negative span; Eq. (8) further requires ``P < F_pool``.
    """
    span_hi = (w_ofm - 1) * s_pool
    span_lo = (w_ofm - 2) * s_pool + 1  # exclusive bound made inclusive
    base = w_conv - f_pool
    # span = base + 2P  =>  P in [(span_lo - base)/2, (span_hi - base)/2]
    p_lo = -(-(span_lo - base) // 2)
    p_hi = (span_hi - base) // 2
    p_lo = max(p_lo, 0, -(-(-base) // 2))  # span >= 0  =>  2P >= -base
    return [p for p in range(p_lo, p_hi + 1) if p < f_pool]


@lru_cache(maxsize=4096)
def _pool_options(
    w_conv: int, w_ofm: int, rules: PracticalityRules
) -> tuple[tuple[int, int, int], ...]:
    """(F_pool, S_pool, P_pool) assignments pooling W_conv down to W_ofm.

    Enumerates strides, solving for windows/paddings; applies Eq. (6),
    Eq. (8) and the practicality rules.  Identity pooling (W unchanged,
    F = S = 1) is excluded — it is indistinguishable from no pooling.

    The same ``(w_conv, w_ofm)`` pair recurs for every ``(f, d_ofm, s,
    p)`` combination in :func:`solve_conv_layer`'s inner loop, so the
    result is memoised — ``PracticalityRules`` is a frozen dataclass and
    hashes by value.
    """
    options: list[tuple[int, int, int]] = []
    for s_pool in range(1, w_conv + 1):
        per_stride: list[tuple[int, int, int]] = []
        for f_pool in range(s_pool, w_conv + 1):  # Eq. (6)
            if not rules.pool_window_ok(f_pool, s_pool):
                continue
            for p_pool in _pool_paddings(w_conv, w_ofm, f_pool, s_pool):
                if rules.zero_pool_padding and p_pool != 0:
                    continue
                if (f_pool, s_pool, p_pool) == (1, 1, 0):
                    continue  # identity pooling = no pooling
                if (
                    rules.exact_pool_division
                    and (w_conv - f_pool + 2 * p_pool) % s_pool != 0
                ):
                    continue
                per_stride.append((f_pool, s_pool, p_pool))
        if rules.minimal_pool_window and per_stride:
            per_stride = [min(per_stride, key=lambda t: (t[2], t[0]))]
        options.extend(per_stride)
    return tuple(options)


def solve_conv_layer(
    problem: LayerProblem,
    device: DeviceKnowledge,
    tolerance: float = 0.25,
    rules: PracticalityRules | None = None,
) -> list[LayerGeometry]:
    """All CONV(+POOL) geometries satisfying Eq. (1)-(8) + timing.

    Returned geometries are validated and de-duplicated *canonically*
    (see :meth:`LayerGeometry.canonical`), ordered by (F_conv, S_conv,
    P_conv, pooling).  Eq. (1) is applied in its floored form, so
    ragged-stride geometries (e.g. ``w_ifm=27, f=6, s=2, p=1`` with
    conv width ``(27-6+2)//2 + 1 = 12``) are enumerable — flooring
    makes several ``(W, F, S, P)`` assignments width-equivalent, and
    the canonical dedupe keeps exactly one representative per
    equivalence class instead of letting the ambiguity multiply the
    candidate count.
    """
    rules = rules or PracticalityRules()
    w_ifm, d_ifm = problem.w_ifm, problem.d_ifm
    results: dict[LayerGeometry, None] = {}
    f_max = w_ifm // 2  # Eq. (5) upper bound
    for f in range(1, f_max + 1):
        per_filter = f * f * d_ifm
        d_lo = -(-problem.size_fltr.lo // per_filter)
        d_hi = problem.size_fltr.hi // per_filter
        for d_ofm in range(max(1, d_lo), d_hi + 1):
            w_ofm_cands = _w_ofm_candidates(problem.size_ofm, d_ofm)
            if not w_ofm_cands:
                continue
            for s in range(1, f + 1):  # Eq. (5) lower bound
                prev_w_conv = None
                for p in range(0, f):  # Eq. (7)
                    span = w_ifm - f + 2 * p
                    if span < 0:
                        continue
                    w_conv = span // s + 1
                    if rules.minimal_conv_padding and w_conv == prev_w_conv:
                        continue  # redundant padding ring
                    prev_w_conv = w_conv
                    macs = w_conv * w_conv * d_ofm * f * f * d_ifm
                    predicted = device.predicted_duration(
                        macs, problem.read_transactions,
                        problem.write_transactions, problem.final,
                    )
                    if not timing_consistent(
                        problem.duration, predicted, tolerance
                    ):
                        continue
                    for w_ofm in w_ofm_cands:
                        if w_ofm == w_conv:
                            geom = LayerGeometry(
                                w_ifm=w_ifm, d_ifm=d_ifm,
                                w_ofm=w_ofm, d_ofm=d_ofm,
                                f_conv=f, s_conv=s, p_conv=p,
                            )
                            results[geom.canonical()] = None
                        for f_pool, s_pool, p_pool in _pool_options(
                            w_conv, w_ofm, rules
                        ):
                            geom = LayerGeometry(
                                w_ifm=w_ifm, d_ifm=d_ifm,
                                w_ofm=w_ofm, d_ofm=d_ofm,
                                f_conv=f, s_conv=s, p_conv=p,
                                has_pool=True, f_pool=f_pool,
                                s_pool=s_pool, p_pool=p_pool,
                            )
                            results[geom.canonical()] = None
    return [g.validate() for g in results]


def solve_fc_layer(
    problem: LayerProblem,
    device: DeviceKnowledge,
    tolerance: float = 0.25,
) -> list[FCGeometry]:
    """FC interpretations of a layer: filter covers the whole IFM.

    ``in_features`` is pinned by the chained input geometry; ``D_OFM``
    ranges over the observed OFM size (``W_OFM = 1`` by definition for a
    flattened output).  Per Section 3.2 this almost always yields zero or
    one candidate.
    """
    in_features = problem.w_ifm * problem.w_ifm * problem.d_ifm
    candidates = []
    for d_ofm in range(max(1, problem.size_ofm.lo), problem.size_ofm.hi + 1):
        if not problem.size_fltr.contains(in_features * d_ofm):
            continue
        macs = in_features * d_ofm
        predicted = device.predicted_duration(
            macs, problem.read_transactions, problem.write_transactions,
            problem.final,
        )
        if not timing_consistent(problem.duration, predicted, tolerance):
            continue
        candidates.append(FCGeometry(in_features, d_ofm))
    return candidates
