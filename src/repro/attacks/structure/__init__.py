"""The Section 3 structure reverse-engineering attack."""

from repro.attacks.structure.attack import (
    StructureAttack,
    StructureAttackResult,
    run_structure_attack,
)
from repro.attacks.structure.constraints import DeviceKnowledge, timing_consistent
from repro.attacks.structure.dataflow_id import (
    DataflowIdentifier,
    DataflowSignature,
    identify_dataflow,
)
from repro.attacks.structure.modules import detect_fire_modules
from repro.attacks.structure.pipeline import (
    CandidateLayer,
    CandidateStructure,
    MicroParams,
    StructureSearch,
)
from repro.attacks.structure.ranking import RankedCandidate, rank_candidates
from repro.attacks.structure.reconstruct import reconstruct_network
from repro.attacks.structure.solver import (
    LayerProblem,
    PracticalityRules,
    solve_conv_layer,
    solve_fc_layer,
)
from repro.attacks.structure.trace_analysis import (
    INPUT_SOURCE,
    BoundaryTracker,
    DataflowBoundaryTracker,
    LayerObservation,
    RawBoundaryTracker,
    SizeRange,
    StreamingTraceAnalyzer,
    TraceAnalysis,
    analyse_trace,
    average_analyses,
    find_layer_boundaries,
    find_layer_boundaries_dataflow,
    find_layer_boundaries_raw,
)

__all__ = [
    "run_structure_attack",
    "StructureAttack",
    "StructureAttackResult",
    "DeviceKnowledge",
    "timing_consistent",
    "detect_fire_modules",
    "StructureSearch",
    "CandidateStructure",
    "CandidateLayer",
    "MicroParams",
    "RankedCandidate",
    "rank_candidates",
    "reconstruct_network",
    "LayerProblem",
    "PracticalityRules",
    "solve_conv_layer",
    "solve_fc_layer",
    "SizeRange",
    "LayerObservation",
    "TraceAnalysis",
    "analyse_trace",
    "average_analyses",
    "find_layer_boundaries",
    "find_layer_boundaries_raw",
    "find_layer_boundaries_dataflow",
    "BoundaryTracker",
    "RawBoundaryTracker",
    "DataflowBoundaryTracker",
    "StreamingTraceAnalyzer",
    "DataflowIdentifier",
    "DataflowSignature",
    "identify_dataflow",
    "INPUT_SOURCE",
]
