"""Algorithm 1: chain per-layer solutions into whole-network candidates.

This stage is pure constraint solving over an already-captured
:class:`~repro.attacks.structure.trace_analysis.TraceAnalysis`; all
device interaction happened earlier through
:meth:`repro.device.DeviceSession.observe_structure` and is accounted on
the session's ledger.

Steps 3-5 of the paper's attack: solve each layer's constraint system,
then keep only combinations whose shapes agree along every connection
(``W_OFM_i = W_IFM_{i+1}`` and ``D_OFM_i = D_IFM_{i+1}``, generalised
here to arbitrary DAG edges including bypass merges and concatenations).

The search processes layers in execution order carrying a *frontier* —
the output geometry of every layer that some later layer still reads.
Per-layer solving is memoised on ``(layer, input geometry)``, and the
structure count uses dynamic programming over ``(layer, frontier)`` so
that networks whose candidate combinations explode combinatorially (the
paper counts 3^29 *theoretical* SqueezeNet combinations) can still be
counted exactly without enumerating paths.

The modular-network assumption of Section 3.2 ("large CNNs are typically
constructed in a modular fashion ... assume that the structures of all
fire modules are identical") plugs in as *role constraints*: layers
sharing a role (e.g. every fire module's 3x3 expand) must share their
micro-parameters (filter/stride/padding/pooling).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import SolverError
from repro.attacks.structure.constraints import DeviceKnowledge
from repro.attacks.structure.solver import (
    LayerProblem,
    PracticalityRules,
    solve_conv_layer,
    solve_fc_layer,
)
from repro.attacks.structure.trace_analysis import (
    INPUT_SOURCE,
    LayerObservation,
    TraceAnalysis,
)
from repro.nn.spec import FCGeometry, LayerGeometry
from repro.parallel import get_pool, resolve_workers, shard_indices

__all__ = [
    "ShapeState",
    "CandidateLayer",
    "CandidateStructure",
    "MicroParams",
    "StructureSearch",
]

# Output geometry of a layer: (width, depth); width 0 means a flat vector.
ShapeState = tuple[int, int]


@dataclass(frozen=True)
class MicroParams:
    """Depth-independent structural parameters shared within a module role."""

    f_conv: int
    s_conv: int
    p_conv: int
    has_pool: bool
    f_pool: int
    s_pool: int
    p_pool: int

    @staticmethod
    def of(geom: LayerGeometry) -> "MicroParams":
        return MicroParams(
            geom.f_conv, geom.s_conv, geom.p_conv,
            geom.has_pool, geom.f_pool, geom.s_pool, geom.p_pool,
        )


@dataclass(frozen=True)
class CandidateLayer:
    """One layer of a candidate structure."""

    kind: str  # conv | fc | eltwise | concat
    geometry: LayerGeometry | FCGeometry | None
    sources: tuple[int, ...]


@dataclass(frozen=True)
class CandidateStructure:
    """A complete structure hypothesis for the observed network."""

    layers: tuple[CandidateLayer, ...]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def conv_geometries(self) -> list[LayerGeometry]:
        return [
            l.geometry for l in self.layers if isinstance(l.geometry, LayerGeometry)
        ]

    def describe(self) -> str:
        rows = []
        for i, layer in enumerate(self.layers):
            g = layer.geometry
            if isinstance(g, LayerGeometry):
                pool = (
                    f" pool(f={g.f_pool},s={g.s_pool},p={g.p_pool})"
                    if g.has_pool
                    else ""
                )
                rows.append(
                    f"L{i} conv {g.w_ifm}x{g.d_ifm}->{g.w_ofm}x{g.d_ofm} "
                    f"f={g.f_conv} s={g.s_conv} p={g.p_conv}{pool}"
                )
            elif isinstance(g, FCGeometry):
                rows.append(f"L{i} fc {g.in_features}->{g.out_features}")
            else:
                rows.append(f"L{i} {layer.kind} sources={layer.sources}")
        return "\n".join(rows)


def _merge_kind(obs: LayerObservation) -> str:
    """Classify a merge layer as eltwise or concat from observed sizes.

    A concatenation's OFM is the union of its operands; an element-wise
    addition's OFM matches each operand.  Sizes are block-granular, so
    compare with one block of slack per operand.
    """
    ofm = obs.size_ofm.hi
    srcs = [s.hi for s in obs.size_ifm_per_source]
    slack = (obs.size_ofm.hi - obs.size_ofm.lo + 1) * (len(srcs) + 1)
    if abs(ofm - sum(srcs)) <= slack:
        return "concat"
    if all(abs(ofm - s) <= slack for s in srcs):
        return "eltwise"
    raise SolverError(
        f"merge layer {obs.index}: OFM size {ofm} matches neither the sum "
        f"nor each of its operand sizes {srcs}"
    )


class StructureSearch:
    """Candidate-structure search over one trace analysis.

    Args:
        analysis: output of :func:`analyse_trace`.
        device: public device timing parameters.
        tolerance: timing-filter tolerance (Algorithm 1 step 4).
        module_roles: optional map layer-index -> role name; layers with
            the same role are constrained to identical micro-parameters
            (the Section 3.2 modular assumption).
    """

    def __init__(
        self,
        analysis: TraceAnalysis,
        device: DeviceKnowledge | None = None,
        tolerance: float = 0.25,
        module_roles: dict[int, str] | None = None,
        rules: PracticalityRules | None = None,
    ):
        self.analysis = analysis
        self.device = device or DeviceKnowledge()
        self.tolerance = tolerance
        self.rules = rules or PracticalityRules()
        self.module_roles = dict(module_roles or {})
        c, h, w = analysis.input_shape
        if h != w:
            raise SolverError(f"non-square input {h}x{w}")
        self._input_state: ShapeState = (w, c)
        self._live_after = self._compute_live_sets()
        self._solve_cache: dict[tuple[int, ShapeState], list] = {}

    # -- liveness ---------------------------------------------------------
    def _compute_live_sets(self) -> list[frozenset[int]]:
        """For each position i: source indices still read at layer >= i."""
        n = self.analysis.num_layers
        live: list[frozenset[int]] = []
        for i in range(n):
            needed = {
                src
                for layer in self.analysis.layers[i:]
                for src in layer.sources
            }
            live.append(frozenset(needed))
        live.append(frozenset())
        return live

    # -- per-layer candidate generation ---------------------------------------
    def _solve_compute(
        self, index: int, in_state: ShapeState
    ) -> list[CandidateLayer]:
        key = (index, in_state)
        if key in self._solve_cache:
            return self._solve_cache[key]
        obs = self.analysis.layers[index]
        w_in, d_in = in_state
        assert obs.size_fltr is not None
        final = index == self.analysis.num_layers - 1
        candidates: list[CandidateLayer] = []
        if w_in == 0:
            # Vector input: only an FC interpretation is possible.
            problem = LayerProblem(
                w_ifm=1, d_ifm=d_in,
                size_ofm=obs.size_ofm, size_fltr=obs.size_fltr,
                duration=obs.duration,
                read_transactions=obs.read_transactions,
                write_transactions=obs.write_transactions,
                final=final,
            )
            for fc in solve_fc_layer(problem, self.device, self.tolerance):
                candidates.append(CandidateLayer("fc", fc, obs.sources))
        else:
            problem = LayerProblem(
                w_ifm=w_in, d_ifm=d_in,
                size_ofm=obs.size_ofm, size_fltr=obs.size_fltr,
                duration=obs.duration,
                read_transactions=obs.read_transactions,
                write_transactions=obs.write_transactions,
                final=final,
            )
            for geom in solve_conv_layer(
                problem, self.device, self.tolerance, self.rules
            ):
                candidates.append(CandidateLayer("conv", geom, obs.sources))
            for fc in solve_fc_layer(problem, self.device, self.tolerance):
                candidates.append(CandidateLayer("fc", fc, obs.sources))
        if index == self.analysis.num_layers - 1:
            candidates = [c for c in candidates if self._final_ok(c)]
        self._solve_cache[key] = candidates
        return candidates

    def _final_ok(self, cand: CandidateLayer) -> bool:
        """Last layer: one score per class (W_OFM = 1, D_OFM = classes)."""
        classes = self.analysis.num_classes
        g = cand.geometry
        if isinstance(g, FCGeometry):
            return g.out_features == classes
        if isinstance(g, LayerGeometry):
            return g.w_ofm == 1 and g.d_ofm == classes
        return False

    @staticmethod
    def _out_state(cand: CandidateLayer) -> ShapeState:
        g = cand.geometry
        if isinstance(g, LayerGeometry):
            return (g.w_ofm, g.d_ofm)
        assert isinstance(g, FCGeometry)
        return (0, g.out_features)

    # -- walking the DAG -------------------------------------------------------
    def _candidates_at(
        self,
        index: int,
        frontier: dict[int, ShapeState],
        micro: dict[str, MicroParams],
    ) -> list[tuple[CandidateLayer, ShapeState, dict[str, MicroParams]]]:
        """(candidate, out_state, new_micro) options for layer ``index``."""
        obs = self.analysis.layers[index]
        states = []
        for src in obs.sources:
            if src not in frontier:
                raise SolverError(
                    f"layer {index} reads layer {src}, whose geometry left "
                    "the frontier — liveness bookkeeping is broken"
                )
            states.append(frontier[src])

        if obs.kind == "merge":
            kind = _merge_kind(obs)
            if kind == "eltwise":
                if len(set(states)) != 1:
                    return []
                out = states[0]
            else:
                widths = {s[0] for s in states}
                if len(widths) != 1 or 0 in widths:
                    return []
                out = (states[0][0], sum(s[1] for s in states))
            return [(CandidateLayer(kind, None, obs.sources), out, micro)]

        if len(states) != 1:
            raise SolverError(
                f"compute layer {index} reads {len(states)} feature maps"
            )
        options = []
        role = self.module_roles.get(index)
        for cand in self._solve_compute(index, states[0]):
            new_micro = micro
            if role is not None and isinstance(cand.geometry, LayerGeometry):
                mp = MicroParams.of(cand.geometry)
                bound = micro.get(role)
                if bound is not None:
                    if bound != mp:
                        continue
                else:
                    new_micro = dict(micro)
                    new_micro[role] = mp
            options.append((cand, self._out_state(cand), new_micro))
        return options

    def _step_frontier(
        self, index: int, frontier: dict[int, ShapeState], out: ShapeState
    ) -> dict[int, ShapeState]:
        live = self._live_after[index + 1]
        new_frontier = {k: v for k, v in frontier.items() if k in live}
        if index in live or index == self.analysis.num_layers - 1:
            new_frontier[index] = out
        return new_frontier

    # -- public API ---------------------------------------------------------------
    def _dfs(
        self,
        index: int,
        frontier: dict[int, ShapeState],
        micro: dict[str, MicroParams],
        prefix: list[CandidateLayer],
        results: list[CandidateStructure],
        limit: int,
    ) -> None:
        if index == self.analysis.num_layers:
            results.append(CandidateStructure(tuple(prefix)))
            if len(results) > limit:
                raise SolverError(_limit_message(limit))
            return
        for cand, out, new_micro in self._candidates_at(
            index, frontier, micro
        ):
            prefix.append(cand)
            self._dfs(
                index + 1, self._step_frontier(index, frontier, out),
                new_micro, prefix, results, limit,
            )
            prefix.pop()

    def _initial_frontier(self) -> dict[int, ShapeState]:
        return {INPUT_SOURCE: self._input_state}

    def _enumerate_first_options(
        self, first_indices: list[int], limit: int
    ) -> list[CandidateStructure]:
        """DFS restricted to the given first-layer candidate options.

        This is the parallel partitioning unit: the DFS forest's roots
        are the first layer's candidate options, and each worker walks
        a contiguous subset of roots.  Concatenating the per-root
        results in option order reproduces the serial DFS order.
        """
        frontier = self._initial_frontier()
        options = self._candidates_at(0, frontier, {})
        results: list[CandidateStructure] = []
        for k in first_indices:
            cand, out, new_micro = options[k]
            self._dfs(
                1, self._step_frontier(0, frontier, out),
                new_micro, [cand], results, limit,
            )
        return results

    def enumerate(
        self, limit: int = 100_000, workers: int | None = None
    ) -> list[CandidateStructure]:
        """All candidate structures (DFS); raises if ``limit`` exceeded.

        ``workers > 1`` partitions the DFS by first-layer candidate
        across worker processes; the concatenated result (and the
        over-``limit`` error) is identical to the serial walk.
        """
        n_workers = resolve_workers(workers)
        if n_workers > 1 and self.analysis.num_layers > 0:
            frontier = self._initial_frontier()
            first = self._candidates_at(0, frontier, {})
            if len(first) > 1:
                shards = shard_indices(len(first), n_workers)
                # Registry pool: enumerate is called per probe batch in
                # a search loop, so warm workers matter; the registry
                # owns the pool's lifetime.
                pool = get_pool(
                    len(shards),
                    initializer=_enumerate_init,
                    initargs=(self, limit),
                )
                shard_results = pool.map(_enumerate_shard, shards)
                results = [c for chunk in shard_results for c in chunk]
                if len(results) > limit:
                    raise SolverError(_limit_message(limit))
                return results
        results: list[CandidateStructure] = []
        self._dfs(0, self._initial_frontier(), {}, [], results, limit)
        return results

    def count(self) -> int:
        """Exact number of candidate structures (DP over frontiers)."""
        n = self.analysis.num_layers
        memo: dict = {}

        def rec(
            index: int,
            frontier: frozenset[tuple[int, ShapeState]],
            micro: frozenset[tuple[str, MicroParams]],
        ) -> int:
            if index == n:
                return 1
            key = (index, frontier, micro)
            if key in memo:
                return memo[key]
            fdict = dict(frontier)
            mdict = dict(micro)
            total = 0
            for _, out, new_micro in self._candidates_at(index, fdict, mdict):
                nf = frozenset(
                    self._step_frontier(index, fdict, out).items()
                )
                total += rec(index + 1, nf, frozenset(new_micro.items()))
            memo[key] = total
            return total

        return rec(
            0,
            frozenset({(INPUT_SOURCE, self._input_state)}),
            frozenset(),
        )


def _limit_message(limit: int) -> str:
    return (
        f"more than {limit} candidate structures; use "
        "count() or tighten constraints"
    )


# Worker-process state for the partitioned enumeration: the search
# object (fork-inherited, including its per-layer solve cache) and the
# global candidate limit.
_ENUM_STATE: tuple[StructureSearch, int] | None = None


def _enumerate_init(search: StructureSearch, limit: int) -> None:
    global _ENUM_STATE
    _ENUM_STATE = (search, limit)


def _enumerate_shard(first_indices: list[int]) -> list[CandidateStructure]:
    assert _ENUM_STATE is not None, "worker used before _enumerate_init"
    search, limit = _ENUM_STATE
    return search._enumerate_first_options(first_indices, limit)
