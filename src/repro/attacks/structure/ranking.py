"""Candidate ranking by short training (paper Figures 4 and 5).

The final attack step: train every candidate structure briefly and rank
by validation accuracy; the paper shows the true structure lands near
the top (4th of 24 for AlexNet) and that a few epochs already separate
good candidates from bad ones, so unpromising structures can be filtered
cheaply.

Every candidate's training run is independent — distinct network,
distinct optimiser state, a shuffling seed derived from
``(seed, index)`` and weight init keyed on the candidate's name — so the
loop shards perfectly across worker processes.  ``workers > 1`` trains
candidates in a :class:`~repro.parallel.WorkerPool`; rankings are
bit-identical to the serial path at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import Dataset
from repro.attacks.structure.pipeline import CandidateStructure
from repro.attacks.structure.reconstruct import reconstruct_network
from repro.errors import ConfigError
from repro.nn.optim import SGD, Adam
from repro.nn.train import Trainer
from repro.parallel import get_pool

__all__ = ["RankedCandidate", "rank_candidates", "candidate_seed"]


@dataclass
class RankedCandidate:
    """Training outcome of one candidate structure.

    A plain dataclass (``is_original`` included) so ranked results
    survive pickling across the worker-process boundary.
    """

    candidate: CandidateStructure
    index: int
    top1: float
    top5: float
    train_loss: float
    is_original: bool = False

    def mark_original(self) -> "RankedCandidate":
        self.is_original = True
        return self


def candidate_seed(seed: int, index: int) -> int:
    """The shuffling seed of candidate ``index`` under base ``seed``.

    Derived through :class:`numpy.random.SeedSequence` so it depends
    only on ``(seed, index)`` — never on which worker trains the
    candidate or in what order — which is what makes rankings
    bit-identical at any worker count.
    """
    return int(np.random.SeedSequence([seed, index]).generate_state(1)[0])


@dataclass
class _RankContext:
    """Everything one training task needs, shipped to workers once."""

    dataset: Dataset
    input_shape: tuple[int, int, int]
    num_classes: int
    epochs: int
    depth_scale: float
    lr: float
    momentum: float
    batch_size: int
    seed: int
    optimizer: str


_CONTEXT: _RankContext | None = None


def _rank_init(context: _RankContext) -> None:
    global _CONTEXT
    _CONTEXT = context


def _rank_one(task: tuple[int, CandidateStructure]) -> RankedCandidate:
    """Reconstruct and short-train one candidate (runs inside a worker)."""
    ctx = _CONTEXT
    assert ctx is not None, "worker used before _rank_init"
    i, cand = task
    staged = reconstruct_network(
        cand, ctx.input_shape, ctx.num_classes,
        name=f"cand{i}", depth_scale=ctx.depth_scale,
    )
    net = staged.network
    if ctx.optimizer == "sgd":
        opt = SGD(net.parameters(), lr=ctx.lr, momentum=ctx.momentum)
    elif ctx.optimizer == "adam":
        opt = Adam(net.parameters(), lr=ctx.lr)
    else:
        raise ConfigError(f"unknown optimizer {ctx.optimizer!r}")
    trainer = Trainer(
        net, opt, batch_size=ctx.batch_size,
        seed=candidate_seed(ctx.seed, i),
    )
    result = trainer.fit(
        ctx.dataset.train_images, ctx.dataset.train_labels,
        ctx.dataset.val_images, ctx.dataset.val_labels,
        epochs=ctx.epochs,
    )
    return RankedCandidate(
        candidate=cand,
        index=i,
        top1=result.final_top1,
        top5=result.final_top5,
        train_loss=result.epochs[-1].train_loss,
    )


def rank_candidates(
    candidates: list[CandidateStructure],
    dataset: Dataset,
    input_shape: tuple[int, int, int],
    num_classes: int,
    epochs: int = 3,
    depth_scale: float = 1.0,
    lr: float = 0.01,
    momentum: float = 0.9,
    batch_size: int = 16,
    seed: int = 0,
    optimizer: str = "sgd",
    workers: int | None = None,
) -> list[RankedCandidate]:
    """Train every candidate and return them sorted by top-1 accuracy.

    Each candidate is reconstructed at ``depth_scale`` and trained for
    ``epochs`` epochs with identical hyper-parameters; its shuffling
    seed is :func:`candidate_seed` of ``(seed, index)``, so the
    comparison isolates the structural differences and the result is
    independent of execution order.  ``workers > 1`` distributes the
    training runs over that many processes.
    """
    context = _RankContext(
        dataset=dataset, input_shape=input_shape, num_classes=num_classes,
        epochs=epochs, depth_scale=depth_scale, lr=lr, momentum=momentum,
        batch_size=batch_size, seed=seed, optimizer=optimizer,
    )
    # Registry pool: warm workers are reused across rank_candidates
    # calls (the context re-broadcasts only when it changes), and
    # batched submission amortises per-task dispatch over the many
    # short candidate evaluations.  The registry owns the pool's
    # lifetime — no close here.
    pool = get_pool(workers, initializer=_rank_init, initargs=(context,))
    ranked = pool.map_batched(_rank_one, list(enumerate(candidates)))
    # Stable sort on (-top1, index): ties cannot reorder by worker count.
    ranked.sort(key=lambda r: (-r.top1, r.index))
    return ranked
