"""Candidate ranking by short training (paper Figures 4 and 5).

The final attack step: train every candidate structure briefly and rank
by validation accuracy; the paper shows the true structure lands near
the top (4th of 24 for AlexNet) and that a few epochs already separate
good candidates from bad ones, so unpromising structures can be filtered
cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.synthetic import Dataset
from repro.attacks.structure.pipeline import CandidateStructure
from repro.attacks.structure.reconstruct import reconstruct_network
from repro.errors import ConfigError
from repro.nn.optim import SGD, Adam
from repro.nn.train import Trainer

__all__ = ["RankedCandidate", "rank_candidates"]


@dataclass
class RankedCandidate:
    """Training outcome of one candidate structure."""

    candidate: CandidateStructure
    index: int
    top1: float
    top5: float
    train_loss: float

    @property
    def is_original(self) -> bool:  # set by the caller when known
        return getattr(self, "_is_original", False)

    def mark_original(self) -> "RankedCandidate":
        self._is_original = True
        return self


def rank_candidates(
    candidates: list[CandidateStructure],
    dataset: Dataset,
    input_shape: tuple[int, int, int],
    num_classes: int,
    epochs: int = 3,
    depth_scale: float = 1.0,
    lr: float = 0.01,
    momentum: float = 0.9,
    batch_size: int = 16,
    seed: int = 0,
    optimizer: str = "sgd",
) -> list[RankedCandidate]:
    """Train every candidate and return them sorted by top-1 accuracy.

    Each candidate is reconstructed at ``depth_scale`` and trained for
    ``epochs`` epochs with identical hyper-parameters and seeds, so the
    comparison isolates the structural differences.
    """
    ranked: list[RankedCandidate] = []
    for i, cand in enumerate(candidates):
        staged = reconstruct_network(
            cand, input_shape, num_classes,
            name=f"cand{i}", depth_scale=depth_scale,
        )
        net = staged.network
        if optimizer == "sgd":
            opt = SGD(net.parameters(), lr=lr, momentum=momentum)
        elif optimizer == "adam":
            opt = Adam(net.parameters(), lr=lr)
        else:
            raise ConfigError(f"unknown optimizer {optimizer!r}")
        trainer = Trainer(net, opt, batch_size=batch_size, seed=seed)
        result = trainer.fit(
            dataset.train_images, dataset.train_labels,
            dataset.val_images, dataset.val_labels,
            epochs=epochs,
        )
        ranked.append(
            RankedCandidate(
                candidate=cand,
                index=i,
                top1=result.final_top1,
                top5=result.final_top5,
                train_loss=result.epochs[-1].train_loss,
            )
        )
    ranked.sort(key=lambda r: r.top1, reverse=True)
    return ranked
