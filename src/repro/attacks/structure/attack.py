"""High-level orchestration of the complete structure attack.

One call runs the paper's Algorithm 1 end to end against a simulated
device: observe a trace, analyse it, (optionally) detect repeated
modules, and enumerate/count the candidate structures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device import (
    CoalescingSink,
    DeviceSession,
    QueryLedger,
    StructureObservation,
)
from repro.errors import ConfigError
from repro.attacks.structure.constraints import DeviceKnowledge
from repro.attacks.structure.dataflow_id import DataflowIdentifier
from repro.attacks.structure.modules import detect_fire_modules
from repro.attacks.structure.pipeline import CandidateStructure, StructureSearch
from repro.attacks.structure.solver import PracticalityRules
from repro.attacks.structure.trace_analysis import (
    StreamingTraceAnalyzer,
    TraceAnalysis,
    analyse_trace,
    analysis_from_dict,
    analysis_to_dict,
    average_analyses,
    find_layer_boundaries,
    find_layer_boundaries_dataflow,
)

__all__ = ["StructureAttack", "StructureAttackResult", "run_structure_attack"]


@dataclass
class StructureAttackResult:
    """Everything the structure attack produced for one victim device."""

    observation: StructureObservation
    analysis: TraceAnalysis
    candidates: list[CandidateStructure]
    count: int
    module_roles: dict[int, str]
    ledger: QueryLedger | None = None
    boundaries: list[int] | None = None
    dataflow: str = "output-stationary"

    @property
    def num_layers(self) -> int:
        return self.analysis.num_layers


class StructureAttack:
    """Checkpointable step/resume runner for Algorithm 1.

    The monolithic :func:`run_structure_attack` call is decomposed into
    a deterministic plan of named steps — ``identify`` (only with
    ``dataflow="auto"``), one ``observe:k`` per observation run, and a
    final ``enumerate`` — threaded through a JSON-serialisable *state*
    dict.  A campaign persists the state after each step; a killed
    attack resumes by replaying :meth:`run_step` for the remaining plan
    entries against a fresh session, and because every observe step pins
    its run index explicitly (``observe_structure(run=k)``: run ``k``
    draws run ``k``'s noise stream no matter when it executes), the
    resumed result is bit-identical to the uninterrupted one.

    Driving all steps in order through :meth:`run` reproduces the
    original monolithic behaviour exactly; parameters are those of
    :func:`run_structure_attack`.
    """

    def __init__(
        self,
        sim,
        x: np.ndarray | None = None,
        tolerance: float = 0.25,
        rules: PracticalityRules | None = None,
        use_modular_assumption: bool = True,
        enumerate_limit: int = 100_000,
        seed: int = 0,
        runs: int = 1,
        workers: int | None = None,
        streaming: bool = True,
        dataflow: str = "output-stationary",
        engine: str = "vectorised",
    ) -> None:
        self.session = sim if isinstance(sim, DeviceSession) else DeviceSession(sim)
        self.x = x
        self.tolerance = tolerance
        self.rules = rules
        self.use_modular_assumption = use_modular_assumption
        self.enumerate_limit = enumerate_limit
        self.seed = seed
        self.runs = runs
        self.workers = workers
        self.streaming = streaming
        self.engine = engine
        self._auto = dataflow == "auto"
        if self._auto:
            self._dataflow = None
        else:
            from repro.accel.dataflow import resolve_dataflow

            self._dataflow = resolve_dataflow(dataflow).name
        # Non-serialisable products of the last enumerate step, consumed
        # by result(); reconstructed deterministically if missing.
        self._candidates: list[CandidateStructure] | None = None
        self._analysis: TraceAnalysis | None = None
        self._roles: dict[int, str] | None = None
        self._count: int | None = None
        self._observation: StructureObservation | None = None

    def steps(self) -> list[str]:
        """The deterministic step plan for this attack."""
        plan = ["identify"] if self._auto else []
        plan += [f"observe:{k}" for k in range(self.runs)]
        plan.append("enumerate")
        return plan

    # -- individual steps --------------------------------------------------
    def _resolved_dataflow(self, state: dict) -> str:
        if self._dataflow is not None:
            return self._dataflow
        dataflow = state.get("dataflow")
        if dataflow is None:
            raise ConfigError(
                "dataflow='auto' requires the identify step before any "
                "observe step"
            )
        return str(dataflow)

    def _run_offset(self) -> int:
        """Observation run index of observe:0 (identify consumes run 0)."""
        return 1 if self._auto else 0

    def _step_identify(self, state: dict) -> dict:
        identifier = DataflowIdentifier(
            self.session.image_shape,
            self.session.element_bytes,
            self.session.block_bytes,
            engine=self.engine,
        )
        self.session.observe_structure(
            self.x, seed=self.seed, sink=CoalescingSink(identifier), run=0
        )
        state["dataflow"] = identifier.finish().dataflow
        return state

    def _step_observe(self, k: int, state: dict) -> dict:
        dataflow = self._resolved_dataflow(state)
        session = self.session
        run_index = k + self._run_offset()
        if self.streaming:
            analyzer = StreamingTraceAnalyzer(
                session.image_shape,
                session.element_bytes,
                session.block_bytes,
                dataflow=dataflow,
                engine=self.engine,
            )
            obs = session.observe_structure(
                self.x,
                seed=self.seed + k,
                sink=CoalescingSink(analyzer),
                run=run_index,
            )
            analysis = analyzer.finish(obs)
            bounds = analyzer.boundaries
        else:
            obs = session.observe_structure(
                self.x, seed=self.seed + k, run=run_index
            )
            if dataflow == "output-stationary":
                bounds = find_layer_boundaries(
                    obs.trace.addresses, obs.trace.is_write
                )
            else:
                bounds = find_layer_boundaries_dataflow(
                    obs.trace.addresses,
                    obs.trace.is_write,
                    obs.block_bytes,
                    engine=self.engine,
                )
            analysis = analyse_trace(obs, dataflow=dataflow, engine=self.engine)
        analyses = dict(state.get("analyses", {}))
        analyses[str(k)] = analysis_to_dict(analysis)
        state["analyses"] = analyses
        if k == 0:
            state["boundaries"] = [int(b) for b in bounds]
            state["observation"] = {
                "input_shape": list(obs.input_shape),
                "num_classes": obs.num_classes,
                "element_bytes": obs.element_bytes,
                "block_bytes": obs.block_bytes,
                "total_cycles": obs.total_cycles,
            }
            if not self.streaming:
                # Keep the materialised trace for in-process result()
                # consumers; it is intentionally not checkpointed.
                self._observation = obs
        return state

    def _step_enumerate(self, state: dict) -> dict:
        analyses = state.get("analyses", {})
        if len(analyses) != self.runs:
            missing = [
                k for k in range(self.runs) if str(k) not in analyses
            ]
            raise ConfigError(
                f"enumerate step needs all {self.runs} observe steps; "
                f"missing runs {missing}"
            )
        per_run = [
            analysis_from_dict(analyses[str(k)]) for k in range(self.runs)
        ]
        analysis = per_run[0] if self.runs == 1 else average_analyses(per_run)
        roles = (
            detect_fire_modules(analysis) if self.use_modular_assumption else {}
        )
        search = StructureSearch(
            analysis,
            DeviceKnowledge.from_timing(self.session.public_timing),
            tolerance=self.tolerance,
            module_roles=roles,
            rules=self.rules,
        )
        count = search.count()
        candidates = (
            search.enumerate(self.enumerate_limit, workers=self.workers)
            if count <= self.enumerate_limit
            else []
        )
        self._analysis = analysis
        self._roles = roles
        self._count = count
        self._candidates = candidates
        state["dataflow"] = self._resolved_dataflow(state)
        state["count"] = count
        state["num_candidates"] = len(candidates)
        state["num_layers"] = analysis.num_layers
        return state

    def run_step(self, name: str, state: dict | None = None) -> dict:
        """Execute one named step, returning the updated state dict.

        The input state is not mutated; callers persist the returned
        dict before moving to the next step.  Steps must respect the
        plan order (observe steps need the identify verdict under
        ``dataflow="auto"``; enumerate needs every observe).
        """
        state = dict(state or {})
        if name == "identify":
            return self._step_identify(state)
        if name.startswith("observe:"):
            return self._step_observe(int(name.split(":", 1)[1]), state)
        if name == "enumerate":
            return self._step_enumerate(state)
        raise ConfigError(f"unknown structure attack step {name!r}")

    # -- results -----------------------------------------------------------
    def result(self, state: dict) -> StructureAttackResult:
        """Assemble the final result from a completed state.

        Candidate objects are not serialised in the checkpoint; if this
        instance did not itself run the enumerate step (a resume that
        found every step already done), the enumeration is re-derived
        from the persisted analyses — a deterministic, device-free
        computation.
        """
        if self._candidates is None:
            state = self._step_enumerate(dict(state))
        assert self._analysis is not None and self._count is not None
        observation = self._observation
        if observation is None:
            meta = state.get("observation")
            if meta is None:
                raise ConfigError(
                    "state has no observation; run the observe steps first"
                )
            observation = StructureObservation(
                trace=None,
                input_shape=tuple(meta["input_shape"]),
                num_classes=int(meta["num_classes"]),
                element_bytes=int(meta["element_bytes"]),
                block_bytes=int(meta["block_bytes"]),
                total_cycles=int(meta["total_cycles"]),
            )
        return StructureAttackResult(
            observation=observation,
            analysis=self._analysis,
            candidates=self._candidates or [],
            count=self._count,
            module_roles=self._roles or {},
            ledger=self.session.ledger,
            boundaries=[int(b) for b in state.get("boundaries", [])] or None,
            dataflow=self._resolved_dataflow(state),
        )

    def run(self, state: dict | None = None) -> StructureAttackResult:
        """Drive every remaining step in order and assemble the result.

        ``state`` may carry a partial checkpoint; steps recorded in its
        ``"steps_done"`` list are skipped (their products are already in
        the state), which is the resume path.
        """
        state = dict(state or {})
        done = list(state.get("steps_done", []))
        for name in self.steps():
            if name in done:
                continue
            state = self.run_step(name, state)
            done.append(name)
            state["steps_done"] = list(done)
        return self.result(state)


def run_structure_attack(
    sim,
    x: np.ndarray | None = None,
    tolerance: float = 0.25,
    rules: PracticalityRules | None = None,
    use_modular_assumption: bool = True,
    enumerate_limit: int = 100_000,
    seed: int = 0,
    runs: int = 1,
    workers: int | None = None,
    streaming: bool = True,
    dataflow: str = "output-stationary",
    engine: str = "vectorised",
) -> StructureAttackResult:
    """Run Algorithm 1 against a victim accelerator.

    A thin driver over :class:`StructureAttack` (the checkpointable
    step runner): every step executes in order in-process, which is
    bit-identical to the historical monolithic implementation.

    Args:
        sim: the victim device or an existing
            :class:`~repro.device.DeviceSession` on it (pruning must be
            off; Section 3 assumes a dense-write accelerator).  A bare
            device is wrapped in a fresh session, whose ledger is
            returned on the result.
        x: optional input image; a generic random image by default.
        tolerance: timing-filter tolerance.
        rules: practicality rules (defaults per
            :class:`~repro.attacks.structure.solver.PracticalityRules`).
        use_modular_assumption: apply identical-module role constraints
            when repeated fire modules are detected (Section 3.2).
        enumerate_limit: abort enumeration past this many candidates
            (the count is still computed exactly by DP).
        runs: number of inferences to observe; per-layer durations are
            averaged, countering device timing noise.
        workers: partition the candidate enumeration over this many
            worker processes (serial by default; the result is
            bit-identical either way).
        streaming: analyse the trace span-by-span as the device runs
            (the default: O(chunk) memory, no materialised trace on the
            result's observation).  ``False`` materialises the trace
            and runs the batch analysis — same result bit for bit.
        dataflow: the victim accelerator's loop order, deciding which
            boundary rule decodes the trace (default: the simulator's
            output-stationary default).  ``"auto"`` spends one extra
            metered observation identifying it with
            :class:`DataflowIdentifier` before decoding — the attack
            has no a-priori schedule knowledge in that mode.
        engine: decode engine for every analysis step (boundary
            tracking, streaming analysis, dataflow identification) —
            ``"vectorised"`` (the default) or the original
            ``"reference"`` oracle.  Results are bit-identical.
    """
    return StructureAttack(
        sim,
        x=x,
        tolerance=tolerance,
        rules=rules,
        use_modular_assumption=use_modular_assumption,
        enumerate_limit=enumerate_limit,
        seed=seed,
        runs=runs,
        workers=workers,
        streaming=streaming,
        dataflow=dataflow,
        engine=engine,
    ).run()
