"""High-level orchestration of the complete structure attack.

One call runs the paper's Algorithm 1 end to end against a simulated
device: observe a trace, analyse it, (optionally) detect repeated
modules, and enumerate/count the candidate structures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device import (
    CoalescingSink,
    DeviceSession,
    QueryLedger,
    StructureObservation,
)
from repro.attacks.structure.constraints import DeviceKnowledge
from repro.attacks.structure.dataflow_id import DataflowIdentifier
from repro.attacks.structure.modules import detect_fire_modules
from repro.attacks.structure.pipeline import CandidateStructure, StructureSearch
from repro.attacks.structure.solver import PracticalityRules
from repro.attacks.structure.trace_analysis import (
    StreamingTraceAnalyzer,
    TraceAnalysis,
    analyse_trace,
    average_analyses,
    find_layer_boundaries,
    find_layer_boundaries_dataflow,
)

__all__ = ["StructureAttackResult", "run_structure_attack"]


@dataclass
class StructureAttackResult:
    """Everything the structure attack produced for one victim device."""

    observation: StructureObservation
    analysis: TraceAnalysis
    candidates: list[CandidateStructure]
    count: int
    module_roles: dict[int, str]
    ledger: QueryLedger | None = None
    boundaries: list[int] | None = None
    dataflow: str = "output-stationary"

    @property
    def num_layers(self) -> int:
        return self.analysis.num_layers


def run_structure_attack(
    sim,
    x: np.ndarray | None = None,
    tolerance: float = 0.25,
    rules: PracticalityRules | None = None,
    use_modular_assumption: bool = True,
    enumerate_limit: int = 100_000,
    seed: int = 0,
    runs: int = 1,
    workers: int | None = None,
    streaming: bool = True,
    dataflow: str = "output-stationary",
    engine: str = "vectorised",
) -> StructureAttackResult:
    """Run Algorithm 1 against a victim accelerator.

    Args:
        sim: the victim device or an existing
            :class:`~repro.device.DeviceSession` on it (pruning must be
            off; Section 3 assumes a dense-write accelerator).  A bare
            device is wrapped in a fresh session, whose ledger is
            returned on the result.
        x: optional input image; a generic random image by default.
        tolerance: timing-filter tolerance.
        rules: practicality rules (defaults per
            :class:`~repro.attacks.structure.solver.PracticalityRules`).
        use_modular_assumption: apply identical-module role constraints
            when repeated fire modules are detected (Section 3.2).
        enumerate_limit: abort enumeration past this many candidates
            (the count is still computed exactly by DP).
        runs: number of inferences to observe; per-layer durations are
            averaged, countering device timing noise.
        workers: partition the candidate enumeration over this many
            worker processes (serial by default; the result is
            bit-identical either way).
        streaming: analyse the trace span-by-span as the device runs
            (the default: O(chunk) memory, no materialised trace on the
            result's observation).  ``False`` materialises the trace
            and runs the batch analysis — same result bit for bit.
        dataflow: the victim accelerator's loop order, deciding which
            boundary rule decodes the trace (default: the simulator's
            output-stationary default).  ``"auto"`` spends one extra
            metered observation identifying it with
            :class:`DataflowIdentifier` before decoding — the attack
            has no a-priori schedule knowledge in that mode.
        engine: decode engine for every analysis step (boundary
            tracking, streaming analysis, dataflow identification) —
            ``"vectorised"`` (the default) or the original
            ``"reference"`` oracle.  Results are bit-identical.
    """
    session = sim if isinstance(sim, DeviceSession) else DeviceSession(sim)

    if dataflow == "auto":
        identifier = DataflowIdentifier(
            session.image_shape,
            session.element_bytes,
            session.block_bytes,
            engine=engine,
        )
        session.observe_structure(
            x, seed=seed, sink=CoalescingSink(identifier)
        )
        dataflow = identifier.finish().dataflow
    else:
        from repro.accel.dataflow import resolve_dataflow

        dataflow = resolve_dataflow(dataflow).name

    def _one_run(k: int) -> tuple[StructureObservation, TraceAnalysis, list[int]]:
        if streaming:
            analyzer = StreamingTraceAnalyzer(
                session.image_shape,
                session.element_bytes,
                session.block_bytes,
                dataflow=dataflow,
                engine=engine,
            )
            obs = session.observe_structure(
                x, seed=seed + k, sink=CoalescingSink(analyzer)
            )
            return obs, analyzer.finish(obs), analyzer.boundaries
        obs = session.observe_structure(x, seed=seed + k)
        if dataflow == "output-stationary":
            bounds = find_layer_boundaries(obs.trace.addresses, obs.trace.is_write)
        else:
            bounds = find_layer_boundaries_dataflow(
                obs.trace.addresses,
                obs.trace.is_write,
                obs.block_bytes,
                engine=engine,
            )
        return obs, analyse_trace(obs, dataflow=dataflow, engine=engine), bounds

    observation, analysis, boundaries = _one_run(0)
    if runs > 1:
        extra = [_one_run(k)[1] for k in range(1, runs)]
        analysis = average_analyses([analysis] + extra)
    roles = detect_fire_modules(analysis) if use_modular_assumption else {}
    search = StructureSearch(
        analysis,
        DeviceKnowledge.from_timing(session.public_timing),
        tolerance=tolerance,
        module_roles=roles,
        rules=rules,
    )
    count = search.count()
    candidates = (
        search.enumerate(enumerate_limit, workers=workers)
        if count <= enumerate_limit
        else []
    )
    return StructureAttackResult(
        observation=observation,
        analysis=analysis,
        candidates=candidates,
        count=count,
        module_roles=roles,
        ledger=session.ledger,
        boundaries=boundaries,
        dataflow=dataflow,
    )
