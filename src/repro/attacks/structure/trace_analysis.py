"""Memory-trace analysis: layers, connections, sizes, timing.

Implements steps 1-2 of the paper's Algorithm 1 from nothing but the
attacker-visible trace:

1. **Layer boundaries** via read-after-write dependencies: "the beginning
   of a new convolutional/fully connected layer is revealed by the first
   read access on a memory address that was previously written".
   Concretely, a boundary is a read of an address written *since the last
   boundary* — within a layer the accelerator reads only IFMs written by
   earlier layers and read-only weights, and writes its OFM exactly once.
2. **Region classification** per layer: reads landing in an earlier
   layer's write range are IFM fetches (and identify the producing layer
   — the connection graph, including bypass paths); remaining reads are
   filter fetches; writes delimit the OFM.  Sizes follow from the extents
   of each contiguous range, exact to one memory block.
3. **Timing**: per-layer cycle counts between boundaries, plus the
   per-layer transaction count (used to model memory-bound layers).

Merge layers (element-wise bypass additions and depth concatenations)
read previously written data but no filters; they are classified by
comparing their OFM size against their operand sizes.

Every step exists in two forms: the batch functions
(:func:`find_layer_boundaries`, :func:`find_layer_boundaries_raw`,
:func:`analyse_trace`) operate on a fully materialised trace, and the
streaming classes (:class:`BoundaryTracker`, :class:`RawBoundaryTracker`,
:class:`StreamingTraceAnalyzer`) fold vectorised event chunks as they
arrive — the adversary's tap records a *stream*, so the analysis runs in
O(chunk) memory no matter how large the victim.  The streaming path is
bit-identical to the batch path (asserted in tests) and plugs directly
into :meth:`repro.device.DeviceSession.observe_structure` as a trace
sink.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.device import StructureObservation
from repro.attacks.structure.decode import (
    LastWriterIndex,
    resolve_engine,
    sorted_unique,
)

__all__ = [
    "SizeRange",
    "LayerObservation",
    "TraceAnalysis",
    "find_layer_boundaries",
    "find_layer_boundaries_raw",
    "find_layer_boundaries_dataflow",
    "BoundaryTracker",
    "RawBoundaryTracker",
    "DataflowBoundaryTracker",
    "StreamingTraceAnalyzer",
    "analyse_trace",
    "average_analyses",
    "analysis_to_dict",
    "analysis_from_dict",
]

INPUT_SOURCE = -1  # pseudo-index for the network input feature map


@dataclass(frozen=True)
class SizeRange:
    """Inclusive element-count interval for a tensor observed at
    block granularity: the true size lies in [lo, hi]."""

    lo: int
    hi: int

    @staticmethod
    def from_byte_extent(byte_extent: int, element_bytes: int, block_bytes: int) -> "SizeRange":
        if byte_extent <= 0 or byte_extent % block_bytes != 0:
            raise TraceError(
                f"region extent {byte_extent} not a positive block multiple"
            )
        hi = byte_extent // element_bytes
        epb = block_bytes // element_bytes
        return SizeRange(lo=hi - epb + 1, hi=hi)

    def contains(self, n: int) -> bool:
        return self.lo <= n <= self.hi

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


@dataclass(frozen=True)
class LayerObservation:
    """Attacker-extracted facts about one accelerator layer.

    Attributes:
        index: layer position in execution order (0-based).
        kind: ``compute`` (conv or FC — reads filters) or ``merge``
            (reads only prior OFMs).
        sources: producing layer indices of the feature maps read
            (:data:`INPUT_SOURCE` for the network input).
        size_ifm_per_source: observed IFM size per source, same order.
        size_ofm: observed OFM size.
        size_fltr: observed filter size (None for merge layers).
        duration: cycles from this layer's first transaction to the next
            layer's first (or trace end).
        read_transactions: memory read transactions in the layer window.
        write_transactions: memory write transactions in the layer window.
    """

    index: int
    kind: str
    sources: tuple[int, ...]
    size_ifm_per_source: tuple[SizeRange, ...]
    size_ofm: SizeRange
    size_fltr: SizeRange | None
    duration: int
    read_transactions: int
    write_transactions: int

    @property
    def transactions(self) -> int:
        return self.read_transactions + self.write_transactions

    def source_size(self, source: int) -> SizeRange:
        return self.size_ifm_per_source[self.sources.index(source)]


@dataclass(frozen=True)
class TraceAnalysis:
    """The full structure-attack view of one inference trace."""

    layers: tuple[LayerObservation, ...]
    input_shape: tuple[int, int, int]
    num_classes: int
    element_bytes: int
    block_bytes: int

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def consumers(self, index: int) -> list[int]:
        return [l.index for l in self.layers if index in l.sources]


def _previous_write_index(addresses: np.ndarray, is_write: np.ndarray) -> np.ndarray:
    """For each event, the index of the latest earlier write to the same
    address (-1 if none).  Vectorised via per-address running maxima."""
    n = len(addresses)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    order = np.lexsort((idx, addresses))
    addr_s = addresses[order]
    write_idx_s = np.where(is_write[order], idx[order], -1)
    group_start = np.empty(n, dtype=bool)
    group_start[0] = True
    group_start[1:] = addr_s[1:] != addr_s[:-1]
    group_id = np.cumsum(group_start) - 1
    # Running max within groups via per-group offsets (values < n + 2).
    big = np.int64(n + 2)
    lifted = write_idx_s + group_id * big
    cummax = np.maximum.accumulate(lifted)
    prev_excl = np.empty(n, dtype=np.int64)
    prev_excl[0] = -1
    prev_excl[1:] = cummax[:-1] - group_id[1:] * big
    prev_excl[group_start] = -1
    prev_excl = np.where(prev_excl >= 0, prev_excl, -1)
    out = np.empty(n, dtype=np.int64)
    out[order] = prev_excl
    return out


def find_layer_boundaries_raw(
    addresses: np.ndarray, is_write: np.ndarray
) -> list[int]:
    """Event indices at which a new layer begins — literal RAW rule.

    This is the paper's Section 3.1 rule verbatim: a boundary is a read
    whose address was written since the previous boundary.  It is exact
    for sequential networks but under-segments at branch fan-out (a
    second consumer re-reading an already-consumed OFM produces no fresh
    RAW edge); use :func:`find_layer_boundaries` for general DAGs.
    """
    n = len(addresses)
    if n == 0:
        raise TraceError("empty trace")
    prev_write = _previous_write_index(addresses, is_write)
    is_read = ~is_write
    candidate = is_read & (prev_write >= 0)
    cand_idx = np.flatnonzero(candidate)
    boundaries = [0]
    start = 0
    pos = 0
    while pos < len(cand_idx):
        # First candidate read >= start whose producing write is >= start.
        sub = cand_idx[pos:]
        hits = sub[(sub >= start) & (prev_write[sub] >= start)]
        if len(hits) == 0:
            break
        start = int(hits[0])
        boundaries.append(start)
        pos = int(np.searchsorted(cand_idx, start + 1))
    return boundaries


def find_layer_boundaries(
    addresses: np.ndarray, is_write: np.ndarray
) -> list[int]:
    """Event indices at which a new layer begins — protocol rule.

    The Figure 1 accelerator reads a layer's IFM tiles and filters, then
    writes the whole OFM back at the end of the layer ("after computing
    over all tiles ... writes an output feature map back to DRAM").  A
    read following any write in the current window therefore belongs to
    the *next* layer.  For this write-at-end protocol the rule strictly
    subsumes the RAW rule (every fresh RAW read follows the producing
    write) and additionally segments branch fan-out, where a second
    consumer re-reads an OFM the first consumer already read.
    """
    n = len(addresses)
    if n == 0:
        raise TraceError("empty trace")
    boundaries = [0]
    write_idx = np.flatnonzero(is_write)
    read_idx = np.flatnonzero(~is_write)
    start = 0
    while True:
        wpos = np.searchsorted(write_idx, start)
        if wpos == len(write_idx):
            break
        first_write = write_idx[wpos]
        rpos = np.searchsorted(read_idx, first_write)
        if rpos == len(read_idx):
            break
        start = int(read_idx[rpos])
        boundaries.append(start)
    return boundaries


class BoundaryTracker:
    """Streaming counterpart of :func:`find_layer_boundaries`.

    Feed event chunks in trace order; the protocol rule needs only the
    R/W flags and two scalars of state (events seen, whether the current
    window has written yet), so memory is O(1) regardless of trace
    length.  The boundary sequence equals the batch function's on the
    concatenated flags, for any chunking.
    """

    def __init__(self) -> None:
        self._n = 0
        self._boundaries: list[int] = [0]
        self._awaiting_read = False

    @property
    def num_events(self) -> int:
        return self._n

    @property
    def boundaries(self) -> list[int]:
        """Boundaries found so far (the batch function's return value)."""
        if self._n == 0:
            raise TraceError("empty trace")
        return list(self._boundaries)

    def feed(self, is_write: np.ndarray) -> list[int]:
        """Fold one chunk of R/W flags; returns boundaries found in it."""
        is_write = np.asarray(is_write, dtype=bool)
        base = self._n
        new: list[int] = []
        pos, n = 0, len(is_write)
        while pos < n:
            if not self._awaiting_read:
                w = np.flatnonzero(is_write[pos:])
                if len(w) == 0:
                    break
                pos += int(w[0])
                self._awaiting_read = True
            else:
                r = np.flatnonzero(~is_write[pos:])
                if len(r) == 0:
                    break
                pos += int(r[0])
                new.append(base + pos)
                self._awaiting_read = False
        self._n += n
        self._boundaries.extend(new)
        return new


class RawBoundaryTracker:
    """Streaming counterpart of :func:`find_layer_boundaries_raw`.

    The batch rule materialises a previous-write RAW index over the
    whole trace; here it becomes an incrementally maintained
    address→last-write map, bounded by the device's unique block count
    rather than by trace length.  Chunks resolve RAW edges locally via
    :func:`_previous_write_index` and reach into the carried map only
    for addresses with no earlier write in the chunk.

    ``engine="vectorised"`` (the default) carries the map as a
    :class:`~repro.attacks.structure.decode.LastWriterIndex`, so the
    carried lookups and updates are single gather/scatter kernels;
    ``engine="reference"`` keeps the original per-address dict walk as
    the bit-identity oracle.
    """

    def __init__(self, engine: str = "vectorised") -> None:
        self._engine = resolve_engine(engine)
        self._n = 0
        self._boundaries: list[int] = [0]
        self._start = 0
        self._last_write: dict[int, int] = {}
        self._index = LastWriterIndex() if self._engine == "vectorised" else None

    @property
    def num_events(self) -> int:
        return self._n

    @property
    def boundaries(self) -> list[int]:
        """Boundaries found so far (the batch function's return value)."""
        if self._n == 0:
            raise TraceError("empty trace")
        return list(self._boundaries)

    def feed(self, addresses: np.ndarray, is_write: np.ndarray) -> list[int]:
        """Fold one event chunk; returns boundaries found in it."""
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        n = len(addresses)
        if n == 0:
            return []
        base = self._n
        local_prev = _previous_write_index(addresses, is_write)
        prev = np.where(local_prev >= 0, base + local_prev, np.int64(-1))
        carried_needed = local_prev < 0
        if carried_needed.any():
            if self._index is not None:
                prev[carried_needed] = self._index.lookup(
                    addresses[carried_needed]
                )
            else:
                uniq, inv = np.unique(
                    addresses[carried_needed], return_inverse=True
                )
                carried = np.fromiter(
                    (self._last_write.get(int(a), -1) for a in uniq),
                    dtype=np.int64,
                    count=len(uniq),
                )
                prev[carried_needed] = carried[inv]

        new: list[int] = []
        cand = np.flatnonzero((~is_write) & (prev >= 0))
        cand_prev = prev[cand]
        pos = 0
        while pos < len(cand):
            rel_start = self._start - base
            hits = np.flatnonzero(
                (cand[pos:] >= rel_start) & (cand_prev[pos:] >= self._start)
            )
            if len(hits) == 0:
                break
            j = pos + int(hits[0])
            self._start = base + int(cand[j])
            new.append(self._start)
            pos = j + 1

        w = np.flatnonzero(is_write)
        if len(w):
            if self._index is not None:
                self._index.update(addresses[w], base + w)
            else:
                wa = addresses[w]
                uniq_w, rev_first = np.unique(wa[::-1], return_index=True)
                last_local = w[len(wa) - 1 - rev_first]
                for a, g in zip(uniq_w.tolist(), (base + last_local).tolist()):
                    self._last_write[a] = g

        self._n += n
        self._boundaries.extend(new)
        return new


class DataflowBoundaryTracker:
    """Boundary detection that survives mid-stage OFM write bursts.

    The protocol rule (:class:`BoundaryTracker`) assumes write-at-end:
    any read after a write opens a new layer.  Weight- and
    row-stationary dataflows break that assumption — they retire OFM
    slices *between* tile groups, so reads of the same layer legally
    follow writes.  This tracker instead decides per contiguous read
    range, using two dataflow-invariant facts:

    * a layer never reads its own OFM, so a read hitting the current
      window's written blocks (a RAW edge) starts a new layer;
    * within a layer, every read range either revisits or
      block-contiguously extends a region the window already read
      (the next band/group of the same IFM or filter array), so — once
      the window has written — a read range starting *outside* every
      previously read region is the next layer's first fetch.

    Assumes conv stride ≤ filter size (successive bands overlap or
    touch), which holds for every standard CNN; a strided gap would
    split one layer in two.  Works for the output-stationary schedule
    too, but the O(1) protocol tracker is preferred there.

    Feed ``(addresses, is_write)`` chunks in trace order; boundary
    output is invariant to chunking (a range split across chunks folds
    its first part into the window, making the continuation
    block-contiguous by construction).

    ``engine="vectorised"`` (the default) decides whole read runs at
    once: every range start is checked against the read window in one
    batched ``touches`` query and the RAW test runs over the full run,
    falling back to the per-range scan only around an actual (or
    suspected) cut — which happens once per layer, not once per tile
    row.  ``engine="reference"`` keeps the original per-range loop as
    the bit-identity oracle.
    """

    def __init__(self, block_bytes: int, engine: str = "vectorised") -> None:
        self._engine = resolve_engine(engine)
        self._block = block_bytes
        self._n = 0
        self._boundaries: list[int] = [0]
        self._window_writes = _BlockIntervalSet(block_bytes)
        self._window_reads = _BlockIntervalSet(block_bytes)
        self._has_written = False

    @property
    def num_events(self) -> int:
        return self._n

    @property
    def boundaries(self) -> list[int]:
        """Boundaries found so far (batch-equivalent)."""
        if self._n == 0:
            raise TraceError("empty trace")
        return list(self._boundaries)

    def _reset_window(self) -> None:
        self._window_writes = _BlockIntervalSet(self._block)
        self._window_reads = _BlockIntervalSet(self._block)
        self._has_written = False

    def _scan_read_run(self, addresses: np.ndarray) -> list[int]:
        """Boundary offsets within one run of consecutive reads."""
        offs: list[int] = []
        breaks = np.flatnonzero(np.diff(addresses) != self._block) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [len(addresses)]))
        for r0, r1 in zip(starts, ends):
            rng = addresses[r0:r1]
            cut = -1
            if self._has_written and not self._window_reads.touches(
                int(rng[0])
            ):
                cut = 0  # fresh region after a write burst: next layer
            else:
                raw = self._window_writes.contains(rng)
                if raw.any():
                    cut = int(np.argmax(raw))  # reads own output: RAW edge
            if cut >= 0:
                if cut > 0:
                    self._window_reads.add(rng[:cut])
                offs.append(int(r0) + cut)
                self._reset_window()
                self._window_reads.add(rng[cut:])
            else:
                self._window_reads.add(rng)
        return offs

    def _scan_read_run_fast(self, addresses: np.ndarray) -> list[int]:
        """Vectorised run scan: bulk-fold until a cut is actually near.

        Decisions are identical to :meth:`_scan_read_run` — both checks
        are evaluated for every range, just batched.  A range start that
        fails the batched (pre-run) touch test is only a *suspected*
        cut: the reference scan would have folded the run's earlier
        ranges into the window first, and one of those may be what this
        range touches.  The suspect is therefore re-tested after the
        fold, and scanning resumes if it survives.
        """
        offs: list[int] = []
        off0 = 0
        rest = addresses
        while len(rest):
            if not self._has_written and not self._window_writes:
                # No write since the window opened: neither check can
                # fire, the whole remaining run folds in.
                self._window_reads.add(sorted_unique(rest))
                break
            breaks = np.flatnonzero(np.diff(rest) != self._block) + 1
            starts = np.concatenate(([0], breaks))
            contained = np.flatnonzero(self._window_writes.contains(rest))
            first_b = int(contained[0]) if len(contained) else None
            first_a = None
            if self._has_written:
                fresh = starts[~self._window_reads.touches_batch(rest[starts])]
                if len(fresh):
                    first_a = int(fresh[0])
            if first_a is None and first_b is None:
                self._window_reads.add(sorted_unique(rest))
                break
            if first_a is not None and (first_b is None or first_a <= first_b):
                # Fresh-region rule fires first (the reference checks it
                # before the RAW test, and a range's start precedes any
                # RAW hit inside it).
                if first_a > 0:
                    self._window_reads.add(sorted_unique(rest[:first_a]))
                if self._window_reads.touches(int(rest[first_a])):
                    # It touched an earlier range of this same run — the
                    # incremental oracle would not cut here.  Rescan from
                    # this range with the window now up to date.
                    rest = rest[first_a:]
                    off0 += first_a
                    continue
                cut = first_a
            else:
                cut = first_b
                if cut > 0:
                    self._window_reads.add(sorted_unique(rest[:cut]))
            offs.append(off0 + cut)
            self._reset_window()
            rest = rest[cut:]
            off0 += cut
        return offs

    def feed(self, addresses: np.ndarray, is_write: np.ndarray) -> list[int]:
        """Fold one event chunk; returns boundaries found in it."""
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        n = len(addresses)
        if n == 0:
            return []
        vec = self._engine == "vectorised"
        scan = self._scan_read_run_fast if vec else self._scan_read_run
        base = self._n
        new: list[int] = []
        change = np.flatnonzero(np.diff(is_write)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [n]))
        for s, e in zip(starts, ends):
            if is_write[s]:
                wa = addresses[s:e]
                self._window_writes.add(
                    sorted_unique(wa) if vec else np.unique(wa)
                )
                self._has_written = True
            else:
                new.extend(
                    base + int(s) + off for off in scan(addresses[s:e])
                )
        self._n += n
        self._boundaries.extend(new)
        return new


def find_layer_boundaries_dataflow(
    addresses: np.ndarray,
    is_write: np.ndarray,
    block_bytes: int,
    engine: str = "vectorised",
) -> list[int]:
    """Batch form of :class:`DataflowBoundaryTracker`.

    Layer boundaries of a trace whose dataflow interleaves OFM write
    bursts with the tile schedule (weight-/row-stationary).  Equals the
    protocol rule on write-at-end traces of standard CNNs.
    """
    if len(addresses) == 0:
        raise TraceError("empty trace")
    tracker = DataflowBoundaryTracker(block_bytes, engine=engine)
    tracker.feed(addresses, is_write)
    return tracker.boundaries


class _BlockIntervalSet:
    """Sorted disjoint ``[lo, hi)`` byte intervals at block granularity.

    The streaming replacement for holding a layer's unique block
    addresses: memory is O(intervals) — regions are contiguous arrays
    per the paper, so this is a handful of entries — while still
    answering the exact unique-block count and extent the batch path
    derives from ``np.unique``.

    Internals are flat ``lo``/``hi`` arrays, so folding a chunk in is
    one sort + running-maximum merge and every query (``contains``,
    ``touches_batch``) is a ``searchsorted`` — both decode engines
    share this structure.
    """

    __slots__ = ("_block", "_lo", "_hi")

    def __init__(self, block_bytes: int) -> None:
        self._block = block_bytes
        self._lo = np.empty(0, dtype=np.int64)
        self._hi = np.empty(0, dtype=np.int64)

    def __bool__(self) -> bool:
        return len(self._lo) > 0

    def add(self, unique_addresses: np.ndarray) -> None:
        """Fold a sorted array of unique block addresses in."""
        if len(unique_addresses) == 0:
            return
        a = np.asarray(unique_addresses, dtype=np.int64)
        breaks = np.flatnonzero(np.diff(a) != self._block)
        nlo = a[np.concatenate(([0], breaks + 1))]
        nhi = a[np.concatenate((breaks, [len(a) - 1]))] + self._block
        if not len(self._lo):
            self._lo, self._hi = nlo, nhi
            return
        lo = np.concatenate([self._lo, nlo])
        hi = np.concatenate([self._hi, nhi])
        order = np.argsort(lo, kind="stable")
        lo = lo[order]
        hi = hi[order]
        run_hi = np.maximum.accumulate(hi)
        # A strictly-greater lo opens a new interval; lo == previous hi
        # is block-contiguous and merges.
        first = np.empty(len(lo), dtype=bool)
        first[0] = True
        np.greater(lo[1:], run_hi[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        self._lo = lo[starts]
        self._hi = run_hi[np.concatenate((starts[1:] - 1, [len(lo) - 1]))]

    def contains(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised membership test of block addresses against the set."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if not len(self._lo):
            return np.zeros(len(addresses), dtype=bool)
        bounds = np.empty(2 * len(self._lo), dtype=np.int64)
        bounds[0::2] = self._lo
        bounds[1::2] = self._hi
        # Odd insertion position = strictly inside some [lo, hi).
        return np.searchsorted(bounds, addresses, side="right") % 2 == 1

    def touches(self, address: int) -> bool:
        """True if ``address`` lies inside or immediately after an interval.

        ``address == hi`` counts: a block-contiguous continuation of an
        interval (the next tile picking up exactly where the previous
        fetch stopped) is "the same region still being read".
        """
        pos = int(np.searchsorted(self._lo, address, side="right")) - 1
        return pos >= 0 and address <= self._hi[pos]

    def touches_batch(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`touches` over an address array."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if not len(self._lo):
            return np.zeros(len(addresses), dtype=bool)
        pos = np.searchsorted(self._lo, addresses, side="right") - 1
        out = pos >= 0
        out[out] = addresses[out] <= self._hi[pos[out]]
        return out

    @property
    def blocks(self) -> int:
        """Exact count of distinct blocks folded in."""
        return int((self._hi - self._lo).sum()) // self._block

    @property
    def extent(self) -> tuple[int, int]:
        return int(self._lo[0]), int(self._hi[-1])

    def contiguous_extent(self) -> tuple[int, int]:
        """The batch path's :func:`_contiguous_extent`, from intervals."""
        lo, hi = self.extent
        if len(self._lo) != 1:
            raise TraceError(
                f"address set is not contiguous: {self.blocks} blocks "
                f"across {(hi - lo) // self._block} block slots"
            )
        return lo, hi

    def split(self, cut: int) -> tuple["_BlockIntervalSet", "_BlockIntervalSet"]:
        """Partition into (< cut, >= cut) at a block-aligned boundary."""
        below = _BlockIntervalSet(self._block)
        above = _BlockIntervalSet(self._block)
        bm = self._lo < cut
        below._lo = self._lo[bm]
        below._hi = np.minimum(self._hi[bm], cut)
        am = self._hi > cut
        above._lo = np.maximum(self._lo[am], cut)
        above._hi = self._hi[am]
        return below, above


class StreamingTraceAnalyzer:
    """Folds trace spans into a :class:`TraceAnalysis` in O(chunk) memory.

    Implements the trace-sink protocol, so it can be handed straight to
    :meth:`repro.device.DeviceSession.observe_structure` as ``sink`` —
    the analysis then runs *while the device executes* and no trace is
    ever materialised.  Constructor arguments are exactly what the
    adversary knows before the run (they feed the inputs and read the
    device datasheet); wall-clock duration and the class count arrive
    with the observation at :meth:`finish`.

    The result is bit-identical to ``analyse_trace`` on the
    materialised trace, for any chunking (asserted in tests): per-layer
    state is the OFM / unattributed-read interval sets, per-source hit
    flags against finalized write ranges, and two transaction counters —
    all independent of trace length.

    ``engine="vectorised"`` (the default) deduplicates chunks with the
    sort-based kernel and attributes reads to producing layers through
    one ``searchsorted`` over the finalized write ranges instead of a
    per-source mask loop; ``engine="reference"`` keeps the original
    fold as the bit-identity oracle.
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        element_bytes: int,
        block_bytes: int,
        dataflow: str = "output-stationary",
        engine: str = "vectorised",
    ) -> None:
        from repro.accel.dataflow import resolve_dataflow

        self.input_shape = tuple(input_shape)
        self.element_bytes = element_bytes
        self.block_bytes = block_bytes
        self.dataflow = resolve_dataflow(dataflow).name
        self.engine = resolve_engine(engine)
        # The write-at-end protocol rule is exact (and O(1)) for the
        # output-stationary schedule; dataflows that interleave write
        # bursts need the address-aware tracker.
        self._tracker: BoundaryTracker | DataflowBoundaryTracker
        if self.dataflow == "output-stationary":
            self._tracker = BoundaryTracker()
        else:
            self._tracker = DataflowBoundaryTracker(block_bytes, engine=engine)
        self._write_ranges: list[tuple[int, int]] = []
        # Sorted view of the finalized write ranges for one-searchsorted
        # read attribution; None while ranges overlap (never on real
        # traces), which falls back to the per-source loop.
        self._src_index: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._layers: list[LayerObservation] = []
        self._finished = False
        self._layer_start_cycle = 0
        self._reset_layer()

    def _reset_layer(self) -> None:
        self._ofm = _BlockIntervalSet(self.block_bytes)
        self._unattributed = _BlockIntervalSet(self.block_bytes)
        self._source_hit = [False] * len(self._write_ranges)
        self._reads = 0
        self._writes = 0

    # -- sink protocol ----------------------------------------------------
    def emit(self, span) -> None:
        self.feed(span.cycles, span.addresses, span.is_write)

    def begin_stage(self, name: str, kind: str) -> None:
        pass

    def close(self) -> None:
        pass

    # -- streaming --------------------------------------------------------
    @property
    def num_events(self) -> int:
        return self._tracker.num_events

    @property
    def boundaries(self) -> list[int]:
        """Layer boundaries detected so far (protocol rule)."""
        return self._tracker.boundaries

    def feed(
        self,
        cycles: np.ndarray,
        addresses: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Fold one event chunk (a span, or a whole trace) in."""
        if self._finished:
            raise TraceError("analyzer already finished")
        cycles = np.asarray(cycles, dtype=np.int64)
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        n = len(addresses)
        if len(cycles) != n or len(is_write) != n:
            raise TraceError("chunk arrays have mismatched lengths")
        if n == 0:
            return
        if self._tracker.num_events == 0:
            self._layer_start_cycle = int(cycles[0])
        base = self._tracker.num_events
        prev = 0
        if isinstance(self._tracker, BoundaryTracker):
            found = self._tracker.feed(is_write)
        else:
            found = self._tracker.feed(addresses, is_write)
        for b in found:
            local = b - base
            self._consume(addresses[prev:local], is_write[prev:local])
            self._finalize_layer(end_cycle=int(cycles[local]))
            self._layer_start_cycle = int(cycles[local])
            prev = local
        self._consume(addresses[prev:], is_write[prev:])

    def _consume(self, addresses: np.ndarray, is_write: np.ndarray) -> None:
        """Accumulate events that all belong to the current layer."""
        if len(addresses) == 0:
            return
        if self.engine == "vectorised":
            self._consume_vectorised(addresses, is_write)
            return
        write_addrs = addresses[is_write]
        read_addrs = addresses[~is_write]
        self._writes += len(write_addrs)
        self._reads += len(read_addrs)
        if len(write_addrs):
            self._ofm.add(np.unique(write_addrs))
        if len(read_addrs):
            unattributed = np.ones(len(read_addrs), dtype=bool)
            for src, (w_lo, w_hi) in enumerate(self._write_ranges):
                mask = (read_addrs >= w_lo) & (read_addrs < w_hi)
                if mask.any():
                    self._source_hit[src] = True
                    unattributed &= ~mask
            rest = read_addrs[unattributed]
            if len(rest):
                self._unattributed.add(np.unique(rest))

    def _consume_vectorised(
        self, addresses: np.ndarray, is_write: np.ndarray
    ) -> None:
        write_addrs = addresses[is_write]
        read_addrs = addresses[~is_write]
        self._writes += len(write_addrs)
        self._reads += len(read_addrs)
        if len(write_addrs):
            self._ofm.add(sorted_unique(write_addrs))
        if not len(read_addrs):
            return
        if self._src_index is None and self._write_ranges:
            # Overlapping write ranges: a read may belong to several
            # sources at once, which only the mask loop expresses.
            unattributed = np.ones(len(read_addrs), dtype=bool)
            for src, (w_lo, w_hi) in enumerate(self._write_ranges):
                mask = (read_addrs >= w_lo) & (read_addrs < w_hi)
                if mask.any():
                    self._source_hit[src] = True
                    unattributed &= ~mask
            rest = read_addrs[unattributed]
        elif self._write_ranges:
            lo, hi, src_ids = self._src_index
            pos = np.searchsorted(lo, read_addrs, side="right") - 1
            hit = pos >= 0
            hit[hit] = read_addrs[hit] < hi[pos[hit]]
            if hit.any():
                for src in sorted_unique(src_ids[pos[hit]]).tolist():
                    self._source_hit[src] = True
            rest = read_addrs[~hit]
        else:
            rest = read_addrs
        if len(rest):
            self._unattributed.add(sorted_unique(rest))

    def _finalize_layer(self, end_cycle: int) -> None:
        li = len(self._layers)
        if not self._ofm:
            raise TraceError(f"layer {li} wrote no OFM")
        ofm_lo, ofm_hi = self._ofm.contiguous_extent()
        size_ofm = SizeRange.from_byte_extent(
            ofm_hi - ofm_lo, self.element_bytes, self.block_bytes
        )

        sources = [
            src
            for src in range(len(self._write_ranges))
            if self._source_hit[src]
        ]
        ifm_sizes = [
            SizeRange.from_byte_extent(
                self._write_ranges[src][1] - self._write_ranges[src][0],
                self.element_bytes,
                self.block_bytes,
            )
            for src in sources
        ]
        remaining = self._unattributed
        if li == 0 and remaining:
            c, h, w = self.input_shape
            input_elements = c * h * w
            input_bytes = (
                -(-input_elements * self.element_bytes // self.block_bytes)
                * self.block_bytes
            )
            base = remaining.extent[0]
            ifm_part, remaining = remaining.split(base + input_bytes)
            if ifm_part:
                sources.insert(0, INPUT_SOURCE)
                ifm_sizes.insert(
                    0, SizeRange(lo=input_elements, hi=input_elements)
                )

        if remaining:
            f_lo, f_hi = remaining.contiguous_extent()
            size_fltr: SizeRange | None = SizeRange.from_byte_extent(
                f_hi - f_lo, self.element_bytes, self.block_bytes
            )
            kind = "compute"
        else:
            size_fltr = None
            kind = "merge"

        self._layers.append(
            LayerObservation(
                index=li,
                kind=kind,
                sources=tuple(sources),
                size_ifm_per_source=tuple(ifm_sizes),
                size_ofm=size_ofm,
                size_fltr=size_fltr,
                duration=max(1, end_cycle - self._layer_start_cycle),
                read_transactions=self._reads,
                write_transactions=self._writes,
            )
        )
        self._write_ranges.append((ofm_lo, ofm_hi))
        if self.engine == "vectorised":
            self._rebuild_src_index()
        self._reset_layer()

    def _rebuild_src_index(self) -> None:
        lo = np.array([r[0] for r in self._write_ranges], dtype=np.int64)
        hi = np.array([r[1] for r in self._write_ranges], dtype=np.int64)
        src = np.arange(len(lo), dtype=np.int64)
        order = np.argsort(lo, kind="stable")
        lo, hi, src = lo[order], hi[order], src[order]
        self._src_index = (
            None if bool(np.any(lo[1:] < hi[:-1])) else (lo, hi, src)
        )

    def finish(self, obs: StructureObservation) -> TraceAnalysis:
        """Finalise the last layer and assemble the analysis.

        ``obs`` supplies what only the completed run knows: the
        wall-clock duration (which closes the final layer's window, as
        in the batch path) and the class count read off the host API.
        """
        if self._finished:
            raise TraceError("analyzer already finished")
        if self._tracker.num_events == 0:
            raise TraceError("empty trace")
        if (
            tuple(obs.input_shape) != self.input_shape
            or obs.element_bytes != self.element_bytes
            or obs.block_bytes != self.block_bytes
        ):
            raise TraceError(
                "observation geometry disagrees with the analyzer's "
                "construction parameters"
            )
        self._finalize_layer(end_cycle=obs.total_cycles)
        self._finished = True
        return TraceAnalysis(
            layers=tuple(self._layers),
            input_shape=self.input_shape,  # type: ignore[arg-type]
            num_classes=obs.num_classes,
            element_bytes=self.element_bytes,
            block_bytes=self.block_bytes,
        )


def _contiguous_extent(addresses: np.ndarray, block_bytes: int) -> tuple[int, int]:
    """(lo, hi_exclusive) byte extent of a set of block addresses.

    Raises if the blocks do not form one contiguous region — regions are
    contiguous arrays per the paper, so a gap means misclassification.
    """
    unique = np.unique(addresses)
    lo, hi = int(unique[0]), int(unique[-1]) + block_bytes
    if (hi - lo) // block_bytes != len(unique):
        raise TraceError(
            f"address set is not contiguous: {len(unique)} blocks across "
            f"{(hi - lo) // block_bytes} block slots"
        )
    return lo, hi


def _split_first_layer_reads(
    read_addrs: np.ndarray,
    input_elements: int,
    element_bytes: int,
    block_bytes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Separate the first layer's reads into (input fmap, filters).

    The input feature map's size is known to the adversary (they feed the
    inputs): ``W_IFM^2 * D_IFM`` elements.  Runtimes place the input
    buffer at the low end of the model's address range, so the first
    ``ceil(input_elements / epb)`` read blocks are the input; the rest
    are the first layer's filters.
    """
    unique = np.unique(read_addrs)
    input_bytes = -(-input_elements * element_bytes // block_bytes) * block_bytes
    base = int(unique[0])
    input_mask = read_addrs < base + input_bytes
    return read_addrs[input_mask], read_addrs[~input_mask]


def analyse_trace(
    obs: StructureObservation,
    dataflow: str = "output-stationary",
    engine: str = "vectorised",
) -> TraceAnalysis:
    """Run the full trace analysis on a structure-attack observation.

    This needs the whole trace in memory.  Observations captured
    through a streaming sink carry no trace — analyse those with
    :class:`StreamingTraceAnalyzer` instead.  ``dataflow`` names the
    victim's loop order (identify it first with
    :class:`~repro.attacks.structure.DataflowIdentifier` if unknown);
    it selects the boundary rule the segmentation uses.
    ``engine="vectorised"`` (the default) folds the trace through the
    streaming analyzer's batched kernels in one chunk;
    ``engine="reference"`` is the original batch implementation and
    the bit-identity oracle.
    """
    from repro.accel.dataflow import resolve_dataflow

    trace = obs.trace
    if trace is None:
        raise TraceError(
            "observation carries no materialised trace (it was streamed "
            "to a sink); use StreamingTraceAnalyzer for streaming runs"
        )
    if resolve_engine(engine) == "vectorised":
        analyzer = StreamingTraceAnalyzer(
            obs.input_shape,
            obs.element_bytes,
            obs.block_bytes,
            dataflow=dataflow,
            engine="vectorised",
        )
        analyzer.feed(trace.cycles, trace.addresses, trace.is_write)
        return analyzer.finish(obs)
    addresses, is_write, cycles = trace.addresses, trace.is_write, trace.cycles
    if resolve_dataflow(dataflow).name == "output-stationary":
        boundaries = find_layer_boundaries(addresses, is_write)
    else:
        boundaries = find_layer_boundaries_dataflow(
            addresses, is_write, obs.block_bytes
        )
    n_events = len(addresses)
    edges = boundaries + [n_events]

    c, h, w = obs.input_shape
    input_elements = c * h * w

    layers: list[LayerObservation] = []
    write_ranges: list[tuple[int, int]] = []  # per-layer OFM byte extents
    for li in range(len(boundaries)):
        lo_e, hi_e = edges[li], edges[li + 1]
        addr = addresses[lo_e:hi_e]
        wmask = is_write[lo_e:hi_e]
        read_addrs = addr[~wmask]
        write_addrs = addr[wmask]
        if len(write_addrs) == 0:
            raise TraceError(f"layer {li} wrote no OFM")
        ofm_lo, ofm_hi = _contiguous_extent(write_addrs, obs.block_bytes)
        size_ofm = SizeRange.from_byte_extent(
            ofm_hi - ofm_lo, obs.element_bytes, obs.block_bytes
        )

        # Attribute reads to earlier layers' OFMs (or the input).
        sources: list[int] = []
        ifm_sizes: list[SizeRange] = []
        unattributed = np.ones(len(read_addrs), dtype=bool)
        for src_idx, (w_lo, w_hi) in enumerate(write_ranges):
            mask = (read_addrs >= w_lo) & (read_addrs < w_hi)
            if mask.any():
                sources.append(src_idx)
                ifm_sizes.append(
                    SizeRange.from_byte_extent(
                        w_hi - w_lo, obs.element_bytes, obs.block_bytes
                    )
                )
                unattributed &= ~mask
        remaining = read_addrs[unattributed]
        if li == 0 and len(remaining):
            ifm_reads, remaining = _split_first_layer_reads(
                remaining, input_elements, obs.element_bytes, obs.block_bytes
            )
            if len(ifm_reads):
                sources.insert(0, INPUT_SOURCE)
                ifm_sizes.insert(
                    0, SizeRange(lo=input_elements, hi=input_elements)
                )

        if len(remaining):
            f_lo, f_hi = _contiguous_extent(remaining, obs.block_bytes)
            size_fltr: SizeRange | None = SizeRange.from_byte_extent(
                f_hi - f_lo, obs.element_bytes, obs.block_bytes
            )
            kind = "compute"
        else:
            size_fltr = None
            kind = "merge"

        start_cycle = int(cycles[lo_e])
        if edges[li + 1] < n_events:
            end_cycle = int(cycles[edges[li + 1]])
        else:
            # Final layer: no next boundary — use the wall clock, which
            # covers the OFM write-back drain the adversary observes.
            end_cycle = obs.total_cycles
        
        layers.append(
            LayerObservation(
                index=li,
                kind=kind,
                sources=tuple(sources),
                size_ifm_per_source=tuple(ifm_sizes),
                size_ofm=size_ofm,
                size_fltr=size_fltr,
                duration=max(1, end_cycle - start_cycle),
                read_transactions=int(len(read_addrs)),
                write_transactions=int(len(write_addrs)),
            )
        )
        write_ranges.append((ofm_lo, ofm_hi))

    return TraceAnalysis(
        layers=tuple(layers),
        input_shape=obs.input_shape,
        num_classes=obs.num_classes,
        element_bytes=obs.element_bytes,
        block_bytes=obs.block_bytes,
    )


def average_analyses(
    analyses: list[TraceAnalysis], mode: str = "min"
) -> TraceAnalysis:
    """Combine repeated observations of the same device.

    Addresses and sizes are deterministic across runs, but real devices
    show run-to-run timing noise.  Contention noise is one-sided (it
    only delays), so the adversary's standard filter is the *minimum*
    per-layer duration over several inferences — it converges to the
    deterministic execution time (``mode="mean"`` is also available for
    symmetric-noise devices).  All runs must agree on the structural
    facts — a mismatch means the traces came from different devices.
    """
    if mode not in ("min", "mean"):
        raise TraceError(f"unknown aggregation mode {mode!r}")
    if not analyses:
        raise TraceError("no analyses to average")
    first = analyses[0]
    for other in analyses[1:]:
        if other.num_layers != first.num_layers:
            raise TraceError("runs disagree on the number of layers")
        for a, b in zip(first.layers, other.layers):
            if (a.sources, a.size_ofm, a.size_fltr) != (
                b.sources, b.size_ofm, b.size_fltr,
            ):
                raise TraceError(
                    f"runs disagree on layer {a.index}'s structural facts"
                )
    layers = []
    for idx in range(first.num_layers):
        obs = [a.layers[idx] for a in analyses]
        base = obs[0]
        layers.append(
            LayerObservation(
                index=base.index,
                kind=base.kind,
                sources=base.sources,
                size_ifm_per_source=base.size_ifm_per_source,
                size_ofm=base.size_ofm,
                size_fltr=base.size_fltr,
                duration=(
                    int(min(o.duration for o in obs))
                    if mode == "min"
                    else int(round(np.mean([o.duration for o in obs])))
                ),
                read_transactions=base.read_transactions,
                write_transactions=base.write_transactions,
            )
        )
    return TraceAnalysis(
        layers=tuple(layers),
        input_shape=first.input_shape,
        num_classes=first.num_classes,
        element_bytes=first.element_bytes,
        block_bytes=first.block_bytes,
    )


# -- checkpoint serialisation ------------------------------------------------
# TraceAnalysis is the structure attack's per-run checkpoint unit: every
# field is a plain int/str/tuple, so one analysis round-trips through
# JSON exactly.  The campaign layer persists one dict per observation
# run and a resumed attack averages the restored analyses bit for bit.


def analysis_to_dict(analysis: TraceAnalysis) -> dict:
    """One analysis as a JSON-serialisable dict (exact round trip)."""
    return {
        "layers": [
            {
                "index": layer.index,
                "kind": layer.kind,
                "sources": list(layer.sources),
                "size_ifm_per_source": [
                    [r.lo, r.hi] for r in layer.size_ifm_per_source
                ],
                "size_ofm": [layer.size_ofm.lo, layer.size_ofm.hi],
                "size_fltr": (
                    None
                    if layer.size_fltr is None
                    else [layer.size_fltr.lo, layer.size_fltr.hi]
                ),
                "duration": layer.duration,
                "read_transactions": layer.read_transactions,
                "write_transactions": layer.write_transactions,
            }
            for layer in analysis.layers
        ],
        "input_shape": list(analysis.input_shape),
        "num_classes": analysis.num_classes,
        "element_bytes": analysis.element_bytes,
        "block_bytes": analysis.block_bytes,
    }


def analysis_from_dict(data: dict) -> TraceAnalysis:
    """Inverse of :func:`analysis_to_dict`."""
    layers = tuple(
        LayerObservation(
            index=int(layer["index"]),
            kind=str(layer["kind"]),
            sources=tuple(int(s) for s in layer["sources"]),
            size_ifm_per_source=tuple(
                SizeRange(int(lo), int(hi))
                for lo, hi in layer["size_ifm_per_source"]
            ),
            size_ofm=SizeRange(*[int(v) for v in layer["size_ofm"]]),
            size_fltr=(
                None
                if layer["size_fltr"] is None
                else SizeRange(*[int(v) for v in layer["size_fltr"]])
            ),
            duration=int(layer["duration"]),
            read_transactions=int(layer["read_transactions"]),
            write_transactions=int(layer["write_transactions"]),
        )
        for layer in data["layers"]
    )
    return TraceAnalysis(
        layers=layers,
        input_shape=tuple(int(v) for v in data["input_shape"]),
        num_classes=int(data["num_classes"]),
        element_bytes=int(data["element_bytes"]),
        block_bytes=int(data["block_bytes"]),
    )
