"""Shared kernels of the attack-side vectorised decode engine.

PR 6 pushed victim-side trace *synthesis* to hundreds of millions of
events per second, which left the attack-side *decoders* — boundary
trackers, the streaming analyzer, the dataflow identifier — as the
pipeline bottleneck: their inner loops resolved read-after-write edges
one event at a time through Python dict lookups and ``.tolist()``
scans.  This module holds the chunk-at-a-time numpy kernels those
decoders now share:

* :func:`resolve_engine` — the ``engine=`` knob.  Every decoder keeps
  its original per-event implementation selectable as
  ``engine="reference"``; the vectorised engine (the default) is
  asserted bit-identical against it in tests, for every model ×
  dataflow × chunking, clean and noisy.  The reference paths are the
  *oracles*: they are never "optimised", only compared against.
* :func:`sorted_unique` / :func:`sorted_unique_counts` — sort-based
  deduplication.  ``np.unique`` on large int64 address arrays takes a
  hash path that is ~50× slower than an explicit sort + diff mask on
  this workload; the decoders never call hash-unique on a hot path.
* :class:`LastWriterIndex` — the vectorised address→last-write map
  shared by the RAW boundary trackers.  Within a chunk, RAW edges are
  resolved by :func:`~repro.attacks.structure.trace_analysis.
  _previous_write_index`; across chunks, this index answers "when was
  this address last written?" for a whole address vector at once.

The last-writer index is a dense/dict hybrid: accelerator traces live
on a block-aligned grid spanning a compact range (an alexnet trace
touches ~2M distinct blocks across a ~2M-block span), so the map is a
flat int64 array indexed by ``(address - base) // stride`` — lookups
and updates are single gather/scatter operations, and scatter's
last-value-wins semantics implements "latest write" with no sort at
all.  If the observed addresses ever stop fitting a compact grid
(adversarial or fuzzed streams), the index migrates its contents to a
plain dict and degrades to the reference lookup loop — slower, never
wrong.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

__all__ = [
    "ENGINES",
    "resolve_engine",
    "sorted_unique",
    "sorted_unique_counts",
    "LastWriterIndex",
]

#: Recognised decode engines, in preference order.
ENGINES = ("vectorised", "reference")


def resolve_engine(engine: str) -> str:
    """Validate an ``engine=`` knob value and return its canonical name."""
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown decode engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def sorted_unique(a: np.ndarray) -> np.ndarray:
    """Sorted distinct values of ``a`` — ``np.unique`` minus the hash path.

    On multi-million-element int64 address arrays numpy's hash-based
    unique is dramatically slower than an explicit sort; the decode
    engine's uniqueness needs are all served by this kernel.
    """
    a = np.asarray(a)
    if len(a) <= 1:
        return a.astype(a.dtype, copy=True)
    s = np.sort(a)
    keep = np.empty(len(s), dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def sorted_unique_counts(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(unique_values, counts)`` via one sort — no hashing."""
    a = np.asarray(a)
    if len(a) == 0:
        return a.astype(a.dtype, copy=True), np.empty(0, dtype=np.int64)
    s = np.sort(a)
    keep = np.empty(len(s), dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    first = np.flatnonzero(keep)
    counts = np.diff(np.append(first, len(s)))
    return s[first], counts


class LastWriterIndex:
    """Vectorised address → (last write index[, cycle]) map.

    The streaming RAW trackers need, per chunk, the global event index
    (and for the robust tracker, the delivered cycle) of the most
    recent *earlier-chunk* write to each address.  The reference
    decoders carry a Python dict; this index answers the same queries
    for whole address vectors.

    Representation is chosen from the data:

    * **dense** (the fast path): addresses observed so far fit a grid
      ``base + k * stride`` with at most ``max_slots`` slots, and the
      map is a flat array per payload.  ``lookup`` is one bounds check
      plus a gather; ``update`` is one scatter (numpy fancy-index
      assignment keeps the *last* value per duplicate slot, which is
      exactly last-writer-wins for an in-order chunk).
    * **dict** (the fallback): grid span or alignment degenerates —
      scattered or adversarial address streams — and the dense array
      would not fit ``max_slots``.  Contents migrate to a Python dict
      and behaviour matches the reference decoders' map exactly.

    Args:
        track_cycles: also record the cycle stamp of each last write
            (the robust tracker's producer-refractory filter needs it).
        max_slots: dense-grid budget; beyond this many slots the index
            falls back to the dict representation.  The default admits
            a ~1 GiB device address span at 64-byte blocks.
    """

    __slots__ = (
        "_track_cycles",
        "_max_slots",
        "_base",
        "_stride",
        "_idx",
        "_cyc",
        "_hi_slot",
        "_dict",
    )

    def __init__(self, track_cycles: bool = False, max_slots: int = 1 << 24):
        if max_slots < 1:
            raise ConfigError(f"max_slots must be >= 1, got {max_slots}")
        self._track_cycles = track_cycles
        self._max_slots = max_slots
        self._base = 0
        self._stride = 0  # 0 = no grid established yet
        self._idx: np.ndarray | None = None
        self._cyc: np.ndarray | None = None
        self._hi_slot = -1
        self._dict: dict[int, tuple[int, int]] | dict[int, int] | None = None

    # -- introspection -----------------------------------------------------
    @property
    def is_dense(self) -> bool:
        """True while the fast dense-grid representation is active."""
        return self._idx is not None

    @property
    def is_dict(self) -> bool:
        return self._dict is not None

    # -- queries -----------------------------------------------------------
    def lookup(self, addresses: np.ndarray) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Last-write indices (-1 if never written) for an address vector.

        With ``track_cycles`` the return value is ``(indices, cycles)``,
        cycles being -1 wherever indices are.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = len(addresses)
        out = np.full(n, -1, dtype=np.int64)
        cyc = np.full(n, -1, dtype=np.int64) if self._track_cycles else None
        if self._dict is not None and n:
            if self._track_cycles:
                pairs = np.array(
                    [self._dict.get(int(a), (-1, -1)) for a in addresses],
                    dtype=np.int64,
                ).reshape(n, 2)
                out[:] = pairs[:, 0]
                cyc[:] = pairs[:, 1]  # type: ignore[index]
            else:
                out[:] = np.fromiter(
                    (self._dict.get(int(a), -1) for a in addresses),
                    dtype=np.int64,
                    count=n,
                )
        elif self._idx is not None and n:
            off = addresses - self._base
            valid = (off >= 0) & (off < len(self._idx) * self._stride)
            if self._stride > 1:
                valid &= off % self._stride == 0
            slots = off[valid] // self._stride
            out[valid] = self._idx[slots]
            if self._track_cycles:
                cyc[valid] = self._cyc[slots]  # type: ignore[index]
        if self._track_cycles:
            return out, cyc  # type: ignore[return-value]
        return out

    # -- updates -----------------------------------------------------------
    def update(
        self,
        addresses: np.ndarray,
        indices: np.ndarray,
        cycles: np.ndarray | None = None,
    ) -> None:
        """Record writes, in stream order (later entries win per address)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if len(addresses) == 0:
            return
        indices = np.asarray(indices, dtype=np.int64)
        if self._track_cycles:
            if cycles is None:
                raise ConfigError("cycle-tracking index needs write cycles")
            cycles = np.asarray(cycles, dtype=np.int64)
        if self._dict is not None:
            self._update_dict(addresses, indices, cycles)
            return
        amin = int(addresses.min())
        amax = int(addresses.max())
        if self._idx is None:
            self._build(addresses, amin, amax)
            if self._dict is not None:
                self._update_dict(addresses, indices, cycles)
                return
        else:
            off = addresses - self._base
            misaligned = self._stride > 1 and bool((off % self._stride).any())
            out_of_range = amin < self._base or (
                amax - self._base
            ) // self._stride >= len(self._idx)
            if misaligned or amin < self._base:
                self._rebuild(addresses, amin, amax)
            elif out_of_range:
                self._grow(amax)
            if self._dict is not None:
                self._update_dict(addresses, indices, cycles)
                return
        slots = (addresses - self._base) // self._stride
        self._idx[slots] = indices
        if self._track_cycles:
            self._cyc[slots] = cycles  # type: ignore[index]
        hi = int(slots.max())
        if hi > self._hi_slot:
            self._hi_slot = hi

    # -- representation management ----------------------------------------
    def _update_dict(self, addresses, indices, cycles) -> None:
        d = self._dict
        if self._track_cycles:
            for a, g, cy in zip(
                addresses.tolist(), indices.tolist(), cycles.tolist()
            ):
                d[a] = (g, cy)
        else:
            for a, g in zip(addresses.tolist(), indices.tolist()):
                d[a] = g

    def _grid_of(self, addresses: np.ndarray, base: int) -> int:
        off = addresses - base
        stride = int(np.gcd.reduce(off)) if len(off) else 0
        return max(1, stride)

    def _alloc(self, slots_needed: int) -> np.ndarray | None:
        """A fresh slot array with geometric headroom, or None if over
        budget (caller must fall back to the dict)."""
        if slots_needed > self._max_slots:
            return None
        cap = min(self._max_slots, max(1024, 2 * slots_needed))
        return np.full(cap, -1, dtype=np.int64)

    def _build(self, addresses: np.ndarray, amin: int, amax: int) -> None:
        stride = self._grid_of(addresses, amin)
        idx = self._alloc((amax - amin) // stride + 1)
        if idx is None:
            self._to_dict()
            return
        self._base, self._stride, self._idx = amin, stride, idx
        if self._track_cycles:
            self._cyc = np.full(len(idx), -1, dtype=np.int64)
        self._hi_slot = -1

    def _grow(self, amax: int) -> None:
        idx = self._alloc((amax - self._base) // self._stride + 1)
        if idx is None:
            self._to_dict()
            return
        idx[: len(self._idx)] = self._idx
        self._idx = idx
        if self._track_cycles:
            cyc = np.full(len(idx), -1, dtype=np.int64)
            cyc[: len(self._cyc)] = self._cyc
            self._cyc = cyc

    def _rebuild(self, addresses: np.ndarray, amin: int, amax: int) -> None:
        """Re-grid: a finer stride and/or lower base now covers both the
        existing entries and the incoming chunk."""
        occupied = np.flatnonzero(self._idx[: self._hi_slot + 1] >= 0)
        old_addrs = self._base + occupied * self._stride
        new_base = min(self._base, amin)
        new_stride = math.gcd(
            self._grid_of(addresses, new_base),
            self._stride,
            self._base - new_base,
        )
        new_stride = max(1, new_stride)
        top = max(amax, int(old_addrs[-1]) if len(old_addrs) else amin)
        idx = self._alloc((top - new_base) // new_stride + 1)
        if idx is None:
            self._to_dict()
            return
        old_idx = self._idx[occupied]
        old_cyc = self._cyc[occupied] if self._track_cycles else None
        self._base, self._stride, self._idx = new_base, new_stride, idx
        if self._track_cycles:
            self._cyc = np.full(len(idx), -1, dtype=np.int64)
        slots = (old_addrs - new_base) // new_stride
        self._idx[slots] = old_idx
        if self._track_cycles:
            self._cyc[slots] = old_cyc
        self._hi_slot = int(slots.max()) if len(slots) else -1

    def _to_dict(self) -> None:
        """Migrate dense contents to the dict fallback representation."""
        d: dict = {}
        if self._idx is not None:
            occupied = np.flatnonzero(self._idx[: self._hi_slot + 1] >= 0)
            addrs = self._base + occupied * self._stride
            if self._track_cycles:
                for a, g, cy in zip(
                    addrs.tolist(),
                    self._idx[occupied].tolist(),
                    self._cyc[occupied].tolist(),
                ):
                    d[a] = (g, cy)
            else:
                for a, g in zip(addrs.tolist(), self._idx[occupied].tolist()):
                    d[a] = g
        self._dict = d
        self._idx = None
        self._cyc = None
        self._hi_slot = -1
