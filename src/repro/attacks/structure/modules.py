"""Module detection: the Section 3.2 modular-network assumption.

SqueezeNet-class networks repeat one building block (the fire module:
a 1x1 squeeze convolution feeding two parallel expand convolutions whose
outputs are depth-concatenated).  The paper reduces its 329 theoretical
SqueezeNet combinations to 9 by assuming "the structures of all fire
modules are identical".

The adversary can *detect* the repetition from the connection graph
alone: a compute layer whose OFM is read by exactly two compute layers
that merge into one concatenation is a fire instance.  Instances are
then given shared *roles* (squeeze / small-filter expand / large-filter
expand, split by whether the instance downsamples, since merged pooling
is a genuine structural difference); the structure search constrains all
layers of one role to identical micro-parameters.
"""

from __future__ import annotations

from repro.attacks.structure.pipeline import _merge_kind
from repro.attacks.structure.trace_analysis import TraceAnalysis

__all__ = ["detect_fire_modules"]


def detect_fire_modules(analysis: TraceAnalysis) -> dict[int, str]:
    """Map layer indices to shared fire-module roles.

    Returns an empty dict when the network has no fire-like modules
    (plain sequential networks).  Roles:

    * ``fire/squeeze`` — the shared producer of both expand layers.
    * ``fire/expand_a`` / ``fire/expand_b`` — the two expand layers,
      ordered by observed filter size (the attacker cannot name them
      1x1/3x3 yet, but can order them consistently across instances).
    * A ``+pool`` suffix marks instances whose expands shrink the map
      (merged pooling) — those genuinely differ structurally and are
      constrained as their own role group.
    """
    layers = analysis.layers
    instances: list[tuple] = []  # (squeeze, small, large, ratio)
    for merge in layers:
        if merge.kind != "merge" or len(merge.sources) != 2:
            continue
        if _merge_kind(merge) != "concat":
            continue
        e1, e2 = (layers[s] for s in merge.sources)
        if e1.kind != "compute" or e2.kind != "compute":
            continue
        if e1.sources != e2.sources or len(e1.sources) != 1:
            continue
        squeeze = layers[e1.sources[0]]
        if squeeze.kind != "compute":
            continue
        assert e1.size_fltr is not None and e2.size_fltr is not None
        if e1.size_fltr.hi <= e2.size_fltr.hi:
            small, large = e1, e2
        else:
            small, large = e2, e1
        instances.append(
            (squeeze, small, large, e1.size_ofm.hi / squeeze.size_ofm.hi)
        )

    # Pooled instances shrink the expand OFM relative to the squeeze OFM
    # (merged pooling divides the spatial area by ~4 while the channel
    # counts scale uniformly across fires).  The attacker separates the
    # two groups by clustering the ratio — only meaningful when the
    # ratios actually split.
    roles: dict[int, str] = {}
    ratios = [r for (_, _, _, r) in instances]
    split = None
    if ratios and max(ratios) / min(ratios) > 2.5:
        split = (max(ratios) * min(ratios)) ** 0.5
    for squeeze, small, large, ratio in instances:
        suffix = "+pool" if split is not None and ratio < split else ""
        roles[squeeze.index] = "fire/squeeze"
        roles[small.index] = f"fire/expand_a{suffix}"
        roles[large.index] = f"fire/expand_b{suffix}"
    return roles
