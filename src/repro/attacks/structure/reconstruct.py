"""Rebuild runnable networks from candidate structures.

The last step of the paper's attack trains each candidate structure and
keeps the most accurate one.  This module turns a
:class:`~repro.attacks.structure.pipeline.CandidateStructure` back into a
:class:`~repro.nn.stages.StagedNetwork` via the same builder the model
zoo uses, so a candidate can be trained, evaluated — or even run through
the simulator again to verify it produces the observed trace shape.

``depth_scale`` shrinks channel depths (and FC widths) uniformly for
proxy training on small synthetic datasets; geometric relations between
candidates are preserved, which is all the ranking experiments compare.
"""

from __future__ import annotations

from repro.errors import AttackError
from repro.attacks.structure.pipeline import CandidateStructure
from repro.attacks.structure.trace_analysis import INPUT_SOURCE
from repro.nn.spec import FCGeometry, LayerGeometry
from repro.nn.stages import StagedNetwork, StagedNetworkBuilder
from repro.nn.zoo.common import scale_depth

__all__ = ["reconstruct_network"]


def _scaled_geometry(geom: LayerGeometry, in_depth: int, scale: float) -> LayerGeometry:
    d_ofm = scale_depth(geom.d_ofm, scale)
    return LayerGeometry(
        w_ifm=geom.w_ifm, d_ifm=in_depth, w_ofm=geom.w_ofm, d_ofm=d_ofm,
        f_conv=geom.f_conv, s_conv=geom.s_conv, p_conv=geom.p_conv,
        has_pool=geom.has_pool, f_pool=geom.f_pool,
        s_pool=geom.s_pool, p_pool=geom.p_pool,
    )


def reconstruct_network(
    candidate: CandidateStructure,
    input_shape: tuple[int, int, int],
    num_classes: int,
    name: str = "candidate",
    depth_scale: float = 1.0,
    dropout: float = 0.0,
) -> StagedNetwork:
    """Build a trainable staged network from a candidate structure.

    Args:
        candidate: solver output (layer kinds, geometries, wiring).
        input_shape: the known accelerator input ``(C, H, W)``.
        num_classes: classifier width; the final layer keeps this width
            even under ``depth_scale`` (class count is observed, not a
            free parameter).
        name: network name.
        depth_scale: uniform channel-depth scale for proxy training.
        dropout: dropout rate on hidden FC stages.
    """
    builder = StagedNetworkBuilder(name, input_shape)
    stage_names: dict[int, str] = {}

    def source_stage(src: int) -> str | None:
        if src == INPUT_SOURCE:
            return None  # builder default: the network input
        return stage_names[src]

    n = len(candidate.layers)
    for i, layer in enumerate(candidate.layers):
        is_last = i == n - 1
        sname = f"L{i}_{layer.kind}"
        if layer.kind == "conv":
            assert isinstance(layer.geometry, LayerGeometry)
            src = source_stage(layer.sources[0])
            in_depth, _ = builder.output_shape(src)
            geom = (
                layer.geometry
                if is_last or depth_scale == 1.0
                else _scaled_geometry(layer.geometry, in_depth, depth_scale)
            )
            if geom.d_ifm != in_depth:
                geom = _scaled_geometry(geom, in_depth, 1.0)
            builder.add_conv(
                sname, geom, input_stage=src,
                pool_kind="avg" if is_last and geom.has_pool else "max",
            )
        elif layer.kind == "fc":
            assert isinstance(layer.geometry, FCGeometry)
            out = layer.geometry.out_features
            if not is_last:
                out = scale_depth(out, depth_scale)
            builder.add_fc(
                sname, out,
                input_stage=source_stage(layer.sources[0]),
                activation=not is_last,
                dropout=0.0 if is_last else dropout,
            )
        elif layer.kind == "eltwise":
            builder.add_eltwise(
                sname, [source_stage(s) or "input" for s in layer.sources]
            )
        elif layer.kind == "concat":
            builder.add_concat(
                sname, [source_stage(s) or "input" for s in layer.sources]
            )
        else:
            raise AttackError(f"unknown candidate layer kind {layer.kind!r}")
        stage_names[i] = sname

    staged = builder.build()
    out_depth, out_width = builder.output_shape(None)
    if out_width > 1:
        raise AttackError(
            f"candidate output is {out_width} wide; expected a classifier"
        )
    if out_width == 1:
        from repro.nn.layers.activations import Flatten

        staged.network.add("output/flatten", Flatten())
    return staged
