"""The paper's Eq. (1)-(8) constraint system and timing filter.

A merged CONV(+POOL) layer has the 11 structural parameters of Table 2.
Given the observed sizes (to block granularity), the known input geometry
(chained from the previous layer), and the measured duration, a candidate
parameter assignment must satisfy:

* Eq. (1)  ``SIZE_IFM  = W_IFM^2  * D_IFM``
* Eq. (2)  ``SIZE_OFM  = W_OFM^2  * D_OFM``
* Eq. (3)  ``SIZE_FLTR = F_conv^2 * D_IFM * D_OFM``
* Eq. (4)  the IFM->OFM width relation (floor-mode conv, ceil-mode pool;
  see :mod:`repro.nn.shapes`)
* Eq. (5)  ``S_conv <= F_conv <= W_IFM / 2``
* Eq. (6)  ``S_pool <= F_pool <= W_conv``
* Eq. (7)  ``P_conv < F_conv``
* Eq. (8)  ``P_pool < F_pool``

plus the timing filter of Algorithm 1 step 4: the measured duration must
match the duration the known device model predicts for the candidate's
MAC count.  The device's PE throughput and DRAM latency are public
parameters (the adversary owns or can profile the device), and the
per-layer transaction count is read off the trace — that is what lets
the filter stay valid for memory-bound layers (big FC) as well as
compute-bound convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.timing import TimingModel
from repro.errors import ConfigError

__all__ = ["DeviceKnowledge", "timing_consistent", "MAX_TIMING_TOLERANCE"]

MAX_TIMING_TOLERANCE = 10.0


@dataclass(frozen=True)
class DeviceKnowledge:
    """Public device parameters the adversary uses for the timing filter."""

    pe_macs_per_cycle: int = 256
    cycles_per_block: int = 4
    stage_overhead: int = 100

    @staticmethod
    def from_timing(model: TimingModel) -> "DeviceKnowledge":
        return DeviceKnowledge(
            pe_macs_per_cycle=model.pe_macs_per_cycle,
            cycles_per_block=model.cycles_per_block,
            stage_overhead=model.stage_overhead,
        )

    def predicted_duration(
        self, macs: int, reads: int, writes: int, final: bool = False
    ) -> int:
        """Predicted layer duration for a candidate's MAC count.

        Reads overlap with compute (double buffering); the OFM write-back
        happens after the last tile, and the per-layer control overhead
        elapses between a layer's write-back and the next layer's first
        fetch (so it lands in the *preceding* boundary-to-boundary
        window; the final layer, measured against the wall clock, has no
        trailing overhead).  Read/write transaction counts come straight
        off the trace — this is what keeps the filter correct for
        memory-bound layers (big FC) where duration is unrelated to MACs.
        """
        compute = -(-macs // self.pe_macs_per_cycle)
        read_time = reads * self.cycles_per_block
        write_time = writes * self.cycles_per_block
        base = max(compute, read_time, 1) + write_time
        return base if final else base + self.stage_overhead


def timing_consistent(
    measured: int, predicted: int, tolerance: float
) -> bool:
    """Accept when measured/predicted lies within [1/(1+tol), 1+tol]."""
    if tolerance < 0 or tolerance > MAX_TIMING_TOLERANCE:
        raise ConfigError(f"tolerance out of range: {tolerance}")
    if predicted <= 0 or measured <= 0:
        return False
    ratio = measured / predicted
    return 1.0 / (1.0 + tolerance) <= ratio <= 1.0 + tolerance
