"""Dataflow identification from the memory-access signature.

Weerasena & Mishra (arXiv 2311.00579) observe that the off-chip access
pattern of a DNN accelerator is a fingerprint of its *dataflow* — the
loop order that decides what stays on chip.  Before decoding a trace the
attacker therefore classifies which schedule produced it, using two
statistics that need no knowledge of the network:

1. **What follows a write burst.**  An output-stationary accelerator
   writes each OFM once at stage end, so the first read after a write
   burst is the *next layer's IFM* — an address the trace has already
   written.  Weight- and row-stationary schedules interleave OFM bursts
   with the stage's remaining work and fetch weights first, so the read
   after a burst lands in a never-written region above the input image
   (``post_write_weight_frac`` high).
2. **Weight re-fetch rate.**  A row-stationary schedule keeps one row's
   partial sums on chip and re-streams every filter group per row, so
   filter blocks are re-read many times over (``weight_reread_frac``
   large).  A weight-stationary schedule pins each group and streams the
   IFM past it — filters are fetched essentially once.

Reads are split into *weight* (never written, above the input-image
region — the input's base is the running minimum read address, its size
is known to the adversary who feeds the device) and *feature-map*
(previously written) accesses; the input image itself counts as
neither.  The classification is deterministic on clean traces and
invariant to how the stream is chunked, so the identifier doubles as a
streaming trace sink for
:meth:`repro.device.DeviceSession.observe_structure`.

Decision rule (see DESIGN.md §12 for the signature table):

====================  ========================  =====================
dataflow              post_write_weight_frac    weight_reread_frac
====================  ========================  =====================
output-stationary     ~0 (reads prior OFM)      (not consulted)
weight-stationary     high (weights-first)      ~0 (groups pinned)
row-stationary        high (weights-first)      high (per-row refetch)
====================  ========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.trace import MemoryTrace, TraceSpan
from repro.attacks.structure.decode import (
    resolve_engine,
    sorted_unique,
    sorted_unique_counts,
)
from repro.attacks.structure.trace_analysis import _BlockIntervalSet
from repro.errors import TraceError

__all__ = ["DataflowSignature", "DataflowIdentifier", "identify_dataflow"]

# A post-write weight fraction at or below this is output-stationary
# (exactly 0.0 on clean traces; the margin tolerates channel noise).
_OS_FRAC_THRESHOLD = 0.5
# Weight-stationary re-reads only group-boundary blocks shared between
# adjacent filter groups — a few per mille; row-stationary re-reads
# whole filter regions once per output row.
_REREAD_THRESHOLD = 0.05


@dataclass(frozen=True)
class DataflowSignature:
    """The classification and the statistics it was decided on.

    Attributes:
        dataflow: identified dataflow name (a key of
            :data:`repro.accel.dataflow.DATAFLOWS`).
        post_write_weight_frac: fraction of write-burst → read
            transitions whose first read is a weight fetch.
        weight_reread_frac: repeated weight-block reads over total
            weight reads.
        write_runs: number of maximal write bursts in the trace.
        weight_reads: total reads classified as filter fetches.
        fmap_reads: total reads classified as feature-map fetches.
    """

    dataflow: str
    post_write_weight_frac: float
    weight_reread_frac: float
    write_runs: int
    weight_reads: int
    fmap_reads: int


class DataflowIdentifier:
    """Streaming classifier of the victim accelerator's dataflow.

    Feed attacker-observed event chunks (or use it directly as a trace
    sink — ``emit``/``begin_stage``/``close``), then call
    :meth:`finish` for the verdict.  State is O(address intervals).

    Args:
        input_shape: the ``(C, H, W)`` image geometry the adversary
            feeds the device (Table 1: input control is not needed,
            but the input's *size* is trivially known).
        element_bytes: public device parameter (data word size).
        block_bytes: public device parameter (DRAM transaction size).
        engine: ``"vectorised"`` (the default) folds each run's
            statistics with the sort-based decode kernels;
            ``"reference"`` keeps the original hash-``np.unique`` fold
            as the bit-identity oracle.  Verdicts are identical.
    """

    def __init__(
        self,
        input_shape: tuple[int, int, int],
        element_bytes: int,
        block_bytes: int,
        engine: str = "vectorised",
    ) -> None:
        if block_bytes <= 0 or element_bytes <= 0:
            raise TraceError("element/block sizes must be positive")
        self.engine = resolve_engine(engine)
        c, h, w = input_shape
        self._input_bytes = -(-(c * h * w * element_bytes) // block_bytes) * block_bytes
        self._block = block_bytes
        self._written = _BlockIntervalSet(block_bytes)
        self._read_blocks = _BlockIntervalSet(block_bytes)
        self._min_addr: int | None = None
        self._post_write_first: list[int] = []
        self._last_flag: bool | None = None
        self.write_runs = 0
        self.weight_reads = 0
        self.weight_rereads = 0
        self.fmap_reads = 0

    # -- trace-sink protocol ----------------------------------------------
    def emit(self, span: TraceSpan) -> None:
        self.feed(span.addresses, span.is_write)

    def begin_stage(self, name: str, kind: str) -> None:
        pass

    def close(self) -> None:
        pass

    # -- streaming interface ----------------------------------------------
    def feed(self, addresses: np.ndarray, is_write: np.ndarray) -> None:
        """Fold one chunk of trace events into the running statistics.

        The verdict is chunking invariant: run transitions are carried
        in ``_last_flag``, re-reads are detected against the cumulative
        read set, and the deciding ``post_write_weight_frac`` is
        computed at :meth:`finish` against final state.  The raw
        weight/fmap counters can differ marginally across chunkings —
        the input-region bound is a running minimum, so reads issued
        before the first input fetch may classify conservatively — but
        never near the decision thresholds.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if len(addresses) == 0:
            return
        vec = self.engine == "vectorised"
        breaks = np.flatnonzero(np.diff(is_write)) + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [len(addresses)]))
        for s, e in zip(starts, ends):
            flag = bool(is_write[s])
            run = addresses[s:e]
            if flag:
                if self._last_flag is not True:
                    self.write_runs += 1
                self._written.add(
                    sorted_unique(run) if vec else np.unique(run)
                )
            else:
                if self._last_flag is True:
                    self._post_write_first.append(int(run[0]))
                self._scan_read_run(run, vec)
            self._last_flag = flag

    def _scan_read_run(self, run: np.ndarray, vec: bool = False) -> None:
        lo = int(run.min())
        self._min_addr = lo if self._min_addr is None else min(self._min_addr, lo)
        input_hi = self._min_addr + self._input_bytes
        if vec:
            uniq, counts = sorted_unique_counts(run)
        else:
            uniq, counts = np.unique(run, return_counts=True)
        seen = self._read_blocks.contains(uniq)
        written = self._written.contains(uniq)
        weightish = ~written & (uniq >= input_hi)
        self.weight_reads += int(counts[weightish].sum())
        self.weight_rereads += int((counts[weightish] - 1 + seen[weightish]).sum())
        self.fmap_reads += int(counts[written].sum())
        self._read_blocks.add(uniq)

    # -- verdict ----------------------------------------------------------
    def signature(self) -> DataflowSignature:
        """Classify from everything fed so far."""
        if self._post_write_first:
            # Classify against the *final* write set and input extent —
            # weights are never written, so deferral loses nothing and
            # the input-region bound is at its most accurate.
            a = np.asarray(self._post_write_first, dtype=np.int64)
            written = self._written.contains(a)
            input_hi = (self._min_addr or 0) + self._input_bytes
            frac = float((~written & (a >= input_hi)).mean())
        else:
            frac = 0.0
        reread_frac = self.weight_rereads / max(1, self.weight_reads)
        if frac <= _OS_FRAC_THRESHOLD:
            name = "output-stationary"
        elif reread_frac > _REREAD_THRESHOLD:
            name = "row-stationary"
        else:
            name = "weight-stationary"
        return DataflowSignature(
            dataflow=name,
            post_write_weight_frac=frac,
            weight_reread_frac=reread_frac,
            write_runs=self.write_runs,
            weight_reads=self.weight_reads,
            fmap_reads=self.fmap_reads,
        )

    # Kept as the documented terminal call; ``signature`` is idempotent.
    finish = signature


def identify_dataflow(
    trace: MemoryTrace,
    input_shape: tuple[int, int, int],
    element_bytes: int,
    block_bytes: int,
    engine: str = "vectorised",
) -> DataflowSignature:
    """Batch classification of a fully materialised trace."""
    if len(trace) == 0:
        raise TraceError("cannot identify a dataflow from an empty trace")
    ident = DataflowIdentifier(
        input_shape, element_bytes, block_bytes, engine=engine
    )
    ident.feed(trace.addresses, trace.is_write)
    return ident.finish()
