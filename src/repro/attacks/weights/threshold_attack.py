"""Exact weight recovery via a tunable pruning threshold.

The paper's Section 4 closing observation: ratio recovery leaves one
unknown (the bias) per filter, but accelerators with a *tunable*
threshold activation (Minerva/Cnvlutin style, refs [1, 12]) leak it too:

* With an all-zero input every output equals ``b``; sweeping the
  threshold, a positive-bias filter's non-zero count collapses exactly
  at ``t = b`` (the paper's own suggestion).
* More generally, a threshold-``t`` rectifier turns every cell into
  ``w*x + (b - t) > 0`` — structurally identical to a ReLU cell with an
  *effective bias* ``b - t``.  Running the ratio attack at two
  thresholds therefore yields ``rho_i = w/(b - t_i)``, and

  ::

      w = (t2 - t1) / (1/rho_1 - 1/rho_2),     b = t1 + w / rho_1

  recovers every weight and the bias exactly — for any bias sign, and
  even for pooled positive-bias filters that saturate the plain channel
  (a large enough threshold always de-saturates them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AttackError
from repro.device import DeviceSession
from repro.attacks.weights.recovery import WeightAttack, WeightStatus
from repro.attacks.weights.target import AttackTarget

__all__ = ["ThresholdAttackResult", "ThresholdWeightAttack", "recover_positive_biases"]


def recover_positive_biases(
    channel: DeviceSession,
    t_max: float = 1e6,
    steps: int = 64,
) -> np.ndarray:
    """Per-filter bias via the zero-input threshold sweep.

    Returns the recovered bias for filters with ``b > 0`` and ``nan``
    for the rest (their zero-input count is zero at every threshold).
    """
    channel.set_threshold(0.0)
    base = np.asarray(channel.query([(0, 0, 0)], [0.0]))
    positive = base > 0
    biases = np.full(len(base), np.nan)
    if not positive.any():
        channel.set_threshold(0.0)
        return biases
    lo = np.zeros(len(base))
    hi = np.full(len(base), t_max)
    for _ in range(steps):
        mid = 0.5 * (lo + hi)
        # One device run per distinct threshold would be the physical
        # cost; filters share the sweep because counts are per plane.
        channel.set_threshold(float(mid.max()))
        # Evaluate each filter at its own midpoint: requires separate
        # runs; loop over unique values for fidelity.
        counts = np.empty(len(base))
        for t in np.unique(mid[positive]):
            channel.set_threshold(float(t))
            c = np.asarray(channel.query([(0, 0, 0)], [0.0]))
            sel = positive & (mid == t)
            counts[sel] = c[sel]
        alive = counts > 0
        lo = np.where(positive & alive, mid, lo)
        hi = np.where(positive & ~alive, mid, hi)
    biases[positive] = 0.5 * (lo + hi)[positive]
    channel.set_threshold(0.0)
    return biases


@dataclass
class ThresholdAttackResult:
    """Exact recovered parameters of the attacked layer."""

    weights: np.ndarray  # (d_ofm, d_ifm, f, f)
    biases: np.ndarray  # (d_ofm,)
    resolved: np.ndarray  # bool mask, same shape as weights
    queries: int

    def max_weight_error(self, true_weights: np.ndarray) -> float:
        if not self.resolved.any():
            raise AttackError("no weights resolved")
        return float(np.abs(self.weights - true_weights)[self.resolved].max())

    def max_bias_error(self, true_biases: np.ndarray) -> float:
        return float(np.abs(self.biases - true_biases).max())


class ThresholdWeightAttack:
    """Run the ratio attack at two thresholds and solve for exact values.

    Args:
        channel: a :class:`~repro.device.DeviceSession` on a device with
            a tunable threshold rectifier.
        target: structural knowledge of the attacked stage.
        t1, t2: the two thresholds.  They must de-saturate the channel
            (for pooled positive-bias filters: exceed the bias); use
            :func:`recover_positive_biases` first when unsure, or pass
            generous values — any pair strictly above ``max(b, 0)``
            works.
    """

    def __init__(
        self,
        channel: DeviceSession,
        target: AttackTarget,
        t1: float = 1.0,
        t2: float = 3.0,
    ):
        if t1 < 0 or t2 < 0 or t1 == t2:
            raise AttackError(f"need two distinct non-negative thresholds, got {t1}, {t2}")
        self.channel = channel
        self.target = target
        self.t1 = t1
        self.t2 = t2

    def _ratios_at(self, t: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        self.channel.set_threshold(t)
        result = WeightAttack(self.channel, self.target).run()
        status = result.status_tensor()
        recovered = status == WeightStatus.RECOVERED
        zero = status == WeightStatus.ZERO
        return result.ratio_tensor(), recovered, zero

    def run(self) -> ThresholdAttackResult:
        try:
            rho1, ok1, zero1 = self._ratios_at(self.t1)
            rho2, ok2, zero2 = self._ratios_at(self.t2)
        finally:
            self.channel.set_threshold(0.0)
        # Weights resolved at BOTH thresholds pin the bias:
        #   rho_i = w / (b - t_i)  =>  w = (t2-t1)/(1/rho1 - 1/rho2).
        pair = ok1 & ok2 & (rho1 != 0.0) & (rho2 != 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            w_pair = (self.t2 - self.t1) / (1.0 / rho1 - 1.0 / rho2)
        # Bias per filter: median over its pair-resolved weights (all of
        # them imply the same bias in exact arithmetic — footnote 2 of
        # the paper: one bias per filter).
        d_ofm = rho1.shape[0]
        biases = np.full(d_ofm, np.nan)
        for f in range(d_ofm):
            mask = pair[f]
            if not mask.any():
                continue
            b_est = self.t1 + w_pair[f][mask] / rho1[f][mask]
            biases[f] = float(np.median(b_est))
        # With the bias known, EVERY weight observed at t1 follows from
        # its single ratio — including weights whose t2-ratio fell
        # outside the searchable input range.
        bias_known = ~np.isnan(biases)
        eff = (biases - self.t1)[:, None, None, None]
        weights = np.where(ok1 & bias_known[:, None, None, None], rho1 * eff, 0.0)
        zeros = zero1 & zero2
        weights[zeros] = 0.0
        resolved = (ok1 | zeros) & bias_known[:, None, None, None]
        return ThresholdAttackResult(
            weights=weights,
            biases=biases,
            resolved=resolved,
            queries=self.channel.queries,
        )
