"""Crossing-set recovery against aggregate-stream pruning devices.

When the accelerator packs the whole OFM into one compressed stream, the
adversary only sees the *total* non-zero count.  Probing the corner
pixel still leaks every filter's corner-weight crossing — the total
count is a step function of the probe value with one step per filter —
but the steps can no longer be attributed to filters.  This module
recovers the unattributed crossing multiset (hence the multiset of
``b/w(0,0)`` values across filters), quantifying how much the plane-
granularity layout choice amplifies the leak.

Steps are located by scanning the probe range at a fixed resolution and
bisecting every segment whose counts differ.  Steps closer together
than the scan resolution merge (reported as one crossing with the
summed step size); the benchmark sweeps the resolution to show the
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AttackError
from repro.device import DeviceSession

__all__ = ["Crossing", "AggregateAttackResult", "recover_crossing_multiset"]


@dataclass(frozen=True)
class Crossing:
    """One located count step: probe value and count delta."""

    x: float
    delta: int


@dataclass
class AggregateAttackResult:
    """Unattributed crossings of one probe pixel."""

    pixel: tuple[int, int, int]
    crossings: list[Crossing]
    queries: int

    def values(self) -> np.ndarray:
        """Crossing positions, each repeated |delta| times (multiset)."""
        out: list[float] = []
        for c in self.crossings:
            out.extend([c.x] * abs(c.delta))
        return np.array(sorted(out))


def recover_crossing_multiset(
    channel: DeviceSession,
    pixel: tuple[int, int, int] = (0, 0, 0),
    resolution: int = 512,
    refine_steps: int = 60,
) -> AggregateAttackResult:
    """Locate every count step of the corner-pixel probe.

    Works with both aggregate and per-plane channels (per-plane counts
    are summed), so the benchmark can compare the two layouts directly.
    The initial scan goes through the session's batched channel in one
    vectorised call; only the bisection refinement is sequential.
    """
    if resolution < 2:
        raise AttackError("resolution must be >= 2")
    lo_lim, hi_lim = channel.input_range

    def total(x: float) -> int:
        counts = channel.query([pixel], [x])
        return int(counts if np.isscalar(counts) else np.sum(counts))

    xs = np.linspace(lo_lim, hi_lim, resolution + 1)
    if hasattr(channel, "query_batch"):
        scanned = channel.query_batch([pixel], xs[:, None])
        counts = [int(row.sum()) for row in scanned]
    else:  # deprecated per-probe channels
        counts = [total(float(x)) for x in xs]
    crossings: list[Crossing] = []
    for k in range(resolution):
        if counts[k] == counts[k + 1]:
            continue
        lo, hi = float(xs[k]), float(xs[k + 1])
        c_lo = counts[k]
        for _ in range(refine_steps):
            mid = 0.5 * (lo + hi)
            if total(mid) == c_lo:
                lo = mid
            else:
                hi = mid
        crossings.append(
            Crossing(x=0.5 * (lo + hi), delta=counts[k + 1] - counts[k])
        )
    return AggregateAttackResult(
        pixel=pixel, crossings=crossings, queries=channel.queries
    )
