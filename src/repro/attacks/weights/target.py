"""Description of the attacked layer, from the weight attacker's view.

Table 1: the weight attack *knows the network structure* (obtained, for
example, by first running the Section 3 structure attack).  This module
captures exactly the structural facts the attack consumes, and derives
the connection geometry of Figure 6: which filter weights a given input
pixel touches, which conv outputs it influences, and which pooled
windows those outputs land in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackError, ConfigError
from repro.nn.shapes import conv_output_width, pool_output_width
from repro.nn.spec import LayerGeometry

__all__ = ["AttackTarget"]


@dataclass(frozen=True)
class AttackTarget:
    """Structural knowledge of the attacked CONV(+POOL) stage.

    The iterative corner-pixel strategy of Section 4.1 (Figure 6) relies
    on unpadded corners — pixel (0,0) connecting only to weight (0,0) —
    so ``p_conv`` must be zero (the paper's analysis makes the same
    assumption; a padded first layer is attacked through its unpadded
    canonical equivalent).
    """

    w_ifm: int
    d_ifm: int
    d_ofm: int
    f_conv: int
    s_conv: int
    has_pool: bool = False
    f_pool: int = 0
    s_pool: int = 0

    def __post_init__(self) -> None:
        if min(self.w_ifm, self.d_ifm, self.d_ofm, self.f_conv, self.s_conv) <= 0:
            raise ConfigError(f"non-positive dimension in {self}")
        if self.f_conv > self.w_ifm:
            raise ConfigError("filter larger than input")
        if self.has_pool and (self.f_pool <= 0 or self.s_pool <= 0):
            raise ConfigError("pooled target needs f_pool and s_pool")

    @staticmethod
    def from_geometry(geom: LayerGeometry) -> "AttackTarget":
        if geom.p_conv != 0:
            canonical = geom.canonical()
            if canonical.p_conv != 0:
                raise AttackError(
                    "the weight attack requires an unpadded convolution "
                    f"(corner-pixel isolation); got p_conv={geom.p_conv}"
                )
            geom = canonical
        return AttackTarget(
            w_ifm=geom.w_ifm, d_ifm=geom.d_ifm, d_ofm=geom.d_ofm,
            f_conv=geom.f_conv, s_conv=geom.s_conv,
            has_pool=geom.has_pool, f_pool=geom.f_pool, s_pool=geom.s_pool,
        )

    # -- derived geometry ---------------------------------------------------
    @property
    def w_conv(self) -> int:
        return conv_output_width(self.w_ifm, self.f_conv, self.s_conv, 0)

    @property
    def w_pool(self) -> int:
        if not self.has_pool:
            raise AttackError("target has no pooling stage")
        return pool_output_width(self.w_conv, self.f_pool, self.s_pool, 0)

    def outputs_seeing_pixel(self, i: int, j: int) -> list[tuple[int, int, int, int]]:
        """Conv outputs influenced by input pixel (i, j).

        Returns ``(a, b, wi, wj)`` tuples: output coordinate and the
        filter-weight coordinate through which the pixel contributes
        (Figure 6's connection counts).
        """
        result = []
        for a in self._coords(i):
            for b in self._coords(j):
                result.append((a, b, i - a * self.s_conv, j - b * self.s_conv))
        return result

    def _coords(self, pixel: int) -> list[int]:
        lo = -(-(pixel - self.f_conv + 1) // self.s_conv)
        hi = pixel // self.s_conv
        return list(range(max(0, lo), min(self.w_conv - 1, hi) + 1))

    def windows_of_output(self, a: int, b: int) -> list[tuple[int, int]]:
        """Pooled windows containing conv output (a, b)."""
        if not self.has_pool:
            raise AttackError("target has no pooling stage")
        return [
            (pa, pb)
            for pa in self._pool_coords(a)
            for pb in self._pool_coords(b)
        ]

    def _pool_coords(self, out: int) -> list[int]:
        lo = -(-(out - self.f_pool + 1) // self.s_pool)
        hi = out // self.s_pool
        return list(range(max(0, lo), min(self.w_pool - 1, hi) + 1))

    def window_members(self, pa: int, pb: int) -> list[tuple[int, int]]:
        """Conv outputs inside pooled window (pa, pb)."""
        if not self.has_pool:
            raise AttackError("target has no pooling stage")
        rows = range(
            pa * self.s_pool, min(pa * self.s_pool + self.f_pool, self.w_conv)
        )
        cols = range(
            pb * self.s_pool, min(pb * self.s_pool + self.f_pool, self.w_conv)
        )
        return [(a, b) for a in rows for b in cols]
