"""The Section 4 weight reverse-engineering attack (zero pruning)."""

from repro.attacks.weights.aggregate import (
    AggregateAttackResult,
    Crossing,
    recover_crossing_multiset,
)
from repro.attacks.weights.recovery import (
    FilterRecovery,
    SteppedWeightAttack,
    WeightAttack,
    WeightAttackResult,
    WeightStatus,
)
from repro.attacks.weights.target import AttackTarget
from repro.attacks.weights.threshold_attack import (
    ThresholdAttackResult,
    ThresholdWeightAttack,
    recover_positive_biases,
)

__all__ = [
    "AttackTarget",
    "SteppedWeightAttack",
    "WeightAttack",
    "WeightAttackResult",
    "FilterRecovery",
    "WeightStatus",
    "ThresholdWeightAttack",
    "ThresholdAttackResult",
    "recover_positive_biases",
    "recover_crossing_multiset",
    "AggregateAttackResult",
    "Crossing",
]
