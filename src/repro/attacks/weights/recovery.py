"""Weight recovery through the zero-pruning channel (paper Section 4).

Everything is expressed in *normalised ratios* ``rho = w / b``: a conv
cell computes ``w*x + b = b * (1 + rho*x)``, so with the bias sign known
(one baseline query: are the all-zero-input outputs non-zero?) the
activation state of any cell at any probe value is a function of its
ratio alone.  The attack recovers ``rho`` for every weight of every
filter — the paper's "each weight can be expressed as a function of one
bias value".

Algorithm (generalising the paper's Algorithm 2 and its pooling
extension):

1. Probe pixels walk the top-left ``F x F`` corner in lexicographic
   order; with an unpadded convolution, pixel ``(i, j)`` touches weight
   ``(i, j)`` through conv output ``(0, 0)`` and otherwise only weights
   already recovered at earlier pixels (Figure 6b's connection counts).
2. The attacker *models* the expected non-zero count from the recovered
   ratios; the residual measured-minus-modelled count isolates the new
   weight's activation, which flips exactly once — a binary search on
   each side of zero pins the crossing ``x* = -1/rho``.
3. With a merged pooling stage (max or average — the channel only sees
   zero vs non-zero, so both behave identically), a window can mask the
   new cell behind an already-known cell (the paper's Eq. 10 scenario).
   Masked weights are resolved in follow-up rounds by (a) re-probing the
   weight through a different conv output whose pooled window has a
   visible region — pixel ``(i + a*S, j + b*S)`` reaches weight
   ``(i, j)`` via output ``(a, b)`` — and (b) the paper's two-pixel
   technique: hold probe ``(i, j)`` at an anchor ``v`` that keeps every
   known cell of the corner window inactive and search pixel ``(0, 0)``
   (which influences only the corner output); the crossing of
   ``b*(1 + rho00*x + rho_ij*v)`` yields
   ``rho_ij = -(1 + rho00*x*) / v``.
4. Missing crossings identify zero weights (paper: "zero-valued weights
   can be identified from missing zero-crossing points").

Binary searches for all ``D_OFM`` filters advance in lockstep through
batched per-filter queries, so the whole 96-filter AlexNet CONV1 case
study runs in minutes on one core.  Because plane ``f``'s count in a
per-filter batch depends only on run ``f``'s own input, every filter's
search trajectory is independent of every other filter's — the attack
therefore shards by contiguous filter ranges across worker processes
(``workers > 1``), each worker driving its own forked
:class:`~repro.device.DeviceSession`, with ratios bit-identical to the
serial run.  The lockstep batching *inside* a shard is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AttackError
from repro.device import DeviceSession
from repro.attacks.weights.target import AttackTarget
from repro.parallel import get_pool, resolve_workers, shard_ranges

__all__ = [
    "WeightStatus",
    "FilterRecovery",
    "WeightAttackResult",
    "WeightAttack",
    "SteppedWeightAttack",
]


class WeightStatus:
    """Per-weight recovery outcomes."""

    UNKNOWN = "unknown"  # not yet attempted / dependencies unresolved
    RECOVERED = "recovered"
    ZERO = "zero"  # no crossing anywhere visible: w = 0 (or |w/b| < 1/x_max)
    MASKED = "masked"  # pooling hides it and no technique unmasked it
    SATURATED = "saturated"  # positive bias + pooling: channel is silent


_RESOLVED = (WeightStatus.RECOVERED, WeightStatus.ZERO)


@dataclass
class FilterRecovery:
    """Recovered ratios of one filter: ``ratios[c, i, j] = w / b``."""

    filter_index: int
    bias_positive: bool
    ratios: np.ndarray  # (d_ifm, f, f) float
    status: np.ndarray  # (d_ifm, f, f) object (status strings)

    @property
    def num_recovered(self) -> int:
        return int((self.status == WeightStatus.RECOVERED).sum())

    @property
    def num_zero(self) -> int:
        return int((self.status == WeightStatus.ZERO).sum())


@dataclass
class WeightAttackResult:
    """Outcome of the full layer attack."""

    target: AttackTarget
    filters: list[FilterRecovery] = field(default_factory=list)
    queries: int = 0

    def ratio_tensor(self) -> np.ndarray:
        """Recovered ``w/b`` ratios, shape ``(d_ofm, d_ifm, f, f)``."""
        return np.stack([f.ratios for f in self.filters])

    def status_tensor(self) -> np.ndarray:
        return np.stack([f.status for f in self.filters])

    def resolved_mask(self) -> np.ndarray:
        status = self.status_tensor()
        return (status == WeightStatus.RECOVERED) | (status == WeightStatus.ZERO)

    def max_ratio_error(self, weights: np.ndarray, biases: np.ndarray) -> float:
        """Max |recovered - true| over resolved weights (Figure 7 metric)."""
        true_ratio = weights / biases[:, None, None, None]
        mask = self.resolved_mask()
        if not mask.any():
            raise AttackError("no weights were recovered")
        return float(np.abs(self.ratio_tensor() - true_ratio)[mask].max())

    def recovery_fraction(self) -> float:
        return float(self.resolved_mask().mean())


class WeightAttack:
    """Recover every ``w/b`` ratio of one conv stage via write counts.

    Args:
        channel: the attacker's :class:`~repro.device.DeviceSession` on
            the victim (must be per-plane; aggregate devices are attacked
            with :mod:`repro.attacks.weights.aggregate`).  Any object
            with the session's channel surface works — defence wrappers
            included.
        target: structural knowledge of the attacked stage.
        search_steps: bisection iterations per crossing (64 reaches
            float64 resolution over any practical input range).
        max_resolution_rounds: extra passes resolving pooling-masked
            weights through alternate probes.
        workers: shard the filter range over this many worker
            processes; ``None``/``0``/``1`` (default) runs serially.
        filter_range: restrict the attack to filters ``[lo, hi)`` —
            the shard a parallel worker owns.  Results then contain
            only those filters.
    """

    def __init__(
        self,
        channel: DeviceSession,
        target: AttackTarget,
        search_steps: int = 64,
        max_resolution_rounds: int = 4,
        workers: int | None = None,
        filter_range: tuple[int, int] | None = None,
    ):
        if not channel.per_plane:
            raise AttackError(
                "per-filter recovery needs per-plane write counts; use the "
                "aggregate attack for single-stream devices"
            )
        if channel.input_shape != (target.d_ifm, target.w_ifm, target.w_ifm):
            raise AttackError(
                f"target geometry {target} does not match device input "
                f"{channel.input_shape}"
            )
        if channel.d_ofm != target.d_ofm:
            # The adversary can count the OFM substreams directly, so a
            # candidate with the wrong output depth is rejected up front.
            raise AttackError(
                f"target d_ofm {target.d_ofm} does not match the device's "
                f"{channel.d_ofm} output substreams"
            )
        self.channel = channel
        self.target = target
        self.search_steps = search_steps
        self.max_resolution_rounds = max_resolution_rounds
        self.workers = workers
        self.x_max = float(min(abs(channel.input_range[0]), channel.input_range[1]))
        if self.x_max <= 0:
            raise AttackError("device input range does not straddle zero")
        self._d = target.d_ofm
        lo, hi = filter_range if filter_range is not None else (0, self._d)
        if not 0 <= lo < hi <= self._d:
            raise AttackError(
                f"filter range [{lo}, {hi}) outside [0, {self._d})"
            )
        self.filter_range = (lo, hi)
        # Arrays stay full-width (per-filter queries are full batches of
        # d_ofm runs); the shard mask keeps out-of-range filters inert —
        # they are never live, so their probe columns are always 0.
        self._shard_mask = np.zeros(self._d, dtype=bool)
        self._shard_mask[lo:hi] = True

    # ------------------------------------------------------------------
    # Count model: everything in terms of rho = w/b and the bias sign.
    # ------------------------------------------------------------------
    @staticmethod
    def _cell_active(
        rho: np.ndarray, x: np.ndarray, bias_positive: np.ndarray
    ) -> np.ndarray:
        """Activation of a cell ``b*(1 + rho*x)`` after ReLU, elementwise."""
        v = 1.0 + rho * x
        return np.where(bias_positive, v > 0, v < 0)

    def _measure(self, pixels, values_per_filter: np.ndarray) -> np.ndarray:
        return np.asarray(
            self.channel.query_per_filter(pixels, values_per_filter)
        )

    def _model_counts(
        self,
        x: np.ndarray,
        known_rho: np.ndarray,
        bias_pos: np.ndarray,
        base: np.ndarray,
        window_groups: list[list[int]] | None,
    ) -> np.ndarray:
        """Expected counts if the new weight were zero.

        ``known_rho`` is (d_ofm, n_known).  Without pooling each cell
        contributes its own pixel; with pooling, ``window_groups`` lists,
        per affected window, the indices (into the known list) of its
        known member cells — a window is active iff any member is (the
        channel only distinguishes zero from non-zero, so max and
        average pooling behave identically here).
        """
        if known_rho.shape[1] == 0 and window_groups is None:
            return base.astype(np.int64)
        act = self._cell_active(known_rho, x[:, None], bias_pos[:, None])
        act0 = np.broadcast_to(bias_pos[:, None], act.shape)
        if window_groups is None:
            return base + (act.astype(np.int64) - act0.astype(np.int64)).sum(axis=1)
        # Pooled path is only reachable for negative-bias filters
        # (positive bias saturates the channel), so windows are inactive
        # at x = 0 and activate when any known member does.
        delta = np.zeros(self._d, dtype=np.int64)
        for members in window_groups:
            if members:
                delta += act[:, members].any(axis=1).astype(np.int64)
        return base + delta

    # ------------------------------------------------------------------
    # Geometry helpers for one probe
    # ------------------------------------------------------------------
    def _probe_plan(
        self, c: int, wi: int, wj: int, a: int, b: int
    ) -> tuple[list[tuple[int, int, int]], list[tuple[int, int, int, int]]]:
        """Pixel and connections probing weight (wi, wj) via output (a, b).

        Returns ``(pixels, known_cells)`` where known_cells are the other
        (output, weight) pairs the pixel influences.
        """
        t = self.target
        pi = wi + a * t.s_conv
        pj = wj + b * t.s_conv
        if pi >= t.w_ifm or pj >= t.w_ifm:
            raise AttackError("probe pixel outside input")
        connected = t.outputs_seeing_pixel(pi, pj)
        known = [cell for cell in connected if (cell[0], cell[1]) != (a, b)]
        return [(c, pi, pj)], known

    def _window_groups(
        self,
        known: list[tuple[int, int, int, int]],
        a: int,
        b: int,
    ) -> tuple[list[list[int]], list[int]]:
        """Known cells grouped by affected window + new-cell window ids."""
        windows: dict[tuple[int, int], list[int]] = {}
        for k, (oa, ob, _, _) in enumerate(known):
            for w in self.target.windows_of_output(oa, ob):
                windows.setdefault(w, []).append(k)
        new_windows = self.target.windows_of_output(a, b)
        for w in new_windows:
            windows.setdefault(w, [])
        keys = sorted(windows)
        groups = [windows[k] for k in keys]
        new_idx = [keys.index(w) for w in new_windows]
        return groups, new_idx

    def _side_limit(
        self,
        groups: list[list[int]],
        new_idx: list[int],
        known_rho: np.ndarray,
        sign: float,
    ) -> np.ndarray:
        """Per-filter |x| bound before every new-cell window is masked.

        Beyond the bound, each window containing the new cell is already
        active through a known member, hiding the new crossing.  Without
        pooling this is simply the input range.
        """
        if not self.target.has_pool:
            return np.full(self._d, self.x_max)
        # The new cell may sit in several (overlapping) windows; its
        # crossing stays observable while *at least one* of them is
        # known-inactive, so the bound is the max over windows of each
        # window's own masking point (min over that window's known
        # members' crossings on this side).
        limit = np.zeros(self._d)
        for w in new_idx:
            window_mask = np.full(self._d, self.x_max)
            for k in groups[w]:
                rho = known_rho[:, k]
                with np.errstate(divide="ignore"):
                    crossing = np.where(rho != 0.0, -1.0 / rho, np.inf)
                on_side = np.isfinite(crossing) & (np.sign(crossing) == sign)
                window_mask = np.where(
                    on_side, np.minimum(window_mask, np.abs(crossing)), window_mask
                )
            limit = np.maximum(limit, window_mask)
        return limit * (1.0 - 1e-9)

    # ------------------------------------------------------------------
    # Core search: residual bisection for one probe configuration
    # ------------------------------------------------------------------
    def _residual_search(
        self,
        pixels,
        known_rho: np.ndarray,
        bias_pos: np.ndarray,
        base: np.ndarray,
        groups: list[list[int]] | None,
        new_idx: list[int],
        todo: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Search both sides of zero for the new weight's crossing.

        Returns ``(found, crossing, fully_visible)`` — ``fully_visible``
        marks filters whose search covered the whole input range on both
        sides (so a missing crossing proves the weight is zero).
        """
        found = np.zeros(self._d, dtype=bool)
        crossing = np.zeros(self._d)
        visible_p = self._side_limit(groups or [], new_idx, known_rho, 1.0)
        visible_n = self._side_limit(groups or [], new_idx, known_rho, -1.0)
        for sign, limit in ((1.0, visible_p), (-1.0, visible_n)):
            live = todo & ~found & (limit > 0)
            if not live.any():
                continue
            hi = sign * limit
            probe = np.where(live, hi, 0.0)
            measured = self._measure(pixels, probe[None, :])
            modeled = self._model_counts(probe, known_rho, bias_pos, base, groups)
            moved = live & ((measured - modeled) != 0)
            if not moved.any():
                continue
            lo = np.zeros(self._d)
            cur_hi = hi.copy()
            for _ in range(self.search_steps):
                mid = np.where(moved, 0.5 * (lo + cur_hi), 0.0)
                measured = self._measure(pixels, mid[None, :])
                modeled = self._model_counts(
                    mid, known_rho, bias_pos, base, groups
                )
                flipped = (measured - modeled) != 0
                cur_hi = np.where(moved & flipped, mid, cur_hi)
                lo = np.where(moved & ~flipped, mid, lo)
            crossing = np.where(moved & ~found, 0.5 * (lo + cur_hi), crossing)
            found |= moved
        full = self.x_max * (1 - 1e-6)
        fully_visible = (visible_p >= full) & (visible_n >= full)
        return found, crossing, fully_visible

    def _attempt_probe(
        self,
        c: int,
        wi: int,
        wj: int,
        a: int,
        b: int,
        ratios: np.ndarray,
        status: np.ndarray,
        bias_pos: np.ndarray,
        base: np.ndarray,
        todo: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One probe of weight (wi, wj) via output (a, b).

        Only filters whose other connected weights are all resolved are
        attempted.  Returns (found, rho, proven_zero).
        """
        pixels, known = self._probe_plan(c, wi, wj, a, b)
        if known:
            dep_ok = np.ones(self._d, dtype=bool)
            for (_, _, ki, kj) in known:
                dep_ok &= np.isin(status[:, c, ki, kj], _RESOLVED)
            known_rho = np.stack(
                [ratios[:, c, ki, kj] for (_, _, ki, kj) in known], axis=1
            )
        else:
            dep_ok = np.ones(self._d, dtype=bool)
            known_rho = np.zeros((self._d, 0))
        attempt = todo & dep_ok
        if not attempt.any():
            return (
                np.zeros(self._d, dtype=bool),
                np.zeros(self._d),
                np.zeros(self._d, dtype=bool),
            )
        if self.target.has_pool:
            groups, new_idx = self._window_groups(known, a, b)
        else:
            groups, new_idx = None, []
        found, crossing, fully_visible = self._residual_search(
            pixels, known_rho, bias_pos, base, groups, new_idx, attempt
        )
        with np.errstate(divide="ignore"):
            rho = np.where(found, -1.0 / crossing, 0.0)
        proven_zero = attempt & ~found & fully_visible
        return found & attempt, rho, proven_zero

    # ------------------------------------------------------------------
    # Two-pixel unmasking (paper Eq. 10/11 generalised)
    # ------------------------------------------------------------------
    def _isolated_rows(self, far: bool) -> list[int]:
        """Pixel rows read by exactly one conv output row (a corner row).

        Near corner: rows ``< S_conv`` are read only by output row 0.
        Far corner: rows past ``(w_conv - 2) * S + F - 1`` are read only
        by the last output row.
        """
        t = self.target
        if not far:
            return list(range(min(t.s_conv, t.f_conv)))
        last_start = (t.w_conv - 1) * t.s_conv
        lo = max(last_start, (t.w_conv - 2) * t.s_conv + t.f_conv)
        return list(range(lo, min(last_start + t.f_conv, t.w_ifm)))

    def _corner_searchers(self) -> list[tuple[tuple[int, int], list[tuple[int, int]]]]:
        """Per corner output, the pixels influencing only that output.

        Returns ``[((A, B), [(r, c), ...]), ...]`` where each pixel
        ``(r, c)`` reaches output ``(A, B)`` through weight
        ``(r - A*S, c - B*S)``.  The paper's technique uses the (0, 0)
        corner; the other three give fallback searchers when the
        corner's weight happens to be zero.
        """
        t = self.target
        a_last = t.w_conv - 1
        corners = []
        for far_a in (False, True):
            for far_b in (False, True):
                corner = (a_last if far_a else 0, a_last if far_b else 0)
                pix = [
                    (r, c)
                    for r in self._isolated_rows(far_a)
                    for c in self._isolated_rows(far_b)
                ]
                if pix:
                    corners.append((corner, pix))
        return corners

    def _two_pixel(
        self,
        c: int,
        wi: int,
        wj: int,
        ratios: np.ndarray,
        status: np.ndarray,
        todo: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Recover masked (wi, wj) via anchored probe + corner search.

        Pixel (wi, wj) is held at an anchor ``v``; a searcher pixel
        (r, c) influencing only conv output (0, 0) through a recovered
        weight ``rho_s`` is swept: the corner output is
        ``b * (1 + rho_s*x + rho_ij*v)``, so its crossing gives
        ``rho_ij = -(1 + rho_s*x*) / v``.  Every other cell the anchor
        drives — including cells whose ratios are still unresolved — is
        *constant* in ``x``, so the count's only discontinuity in ``x``
        is the corner output's crossing.  Anchors are tried at several
        magnitudes on both sides because an unfortunate anchor can leave
        the corner window saturated by a companion cell.
        """
        found = np.zeros(self._d, dtype=bool)
        rho_new = np.zeros(self._d)
        for (corner, searcher_pixels) in self._corner_searchers():
            if not (todo & ~found).any():
                break
            ca, cb = corner
            try:
                pixels, known = self._probe_plan(c, wi, wj, ca, cb)
            except AttackError:
                continue
            known_rho = (
                np.stack(
                    [ratios[:, c, ki, kj] for (_, _, ki, kj) in known], axis=1
                )
                if known
                else np.zeros((self._d, 0))
            )
            groups, new_idx = self._window_groups(known, ca, cb)
            for (pr, pc) in searcher_pixels:
                if (c, pr, pc) == pixels[0]:
                    continue
                sr = pr - ca * self.target.s_conv
                sc = pc - cb * self.target.s_conv
                if (sr, sc) == (wi, wj):
                    continue
                rho_s = ratios[:, c, sr, sc]
                ok_s = (status[:, c, sr, sc] == WeightStatus.RECOVERED) & (
                    rho_s != 0.0
                )
                if not (todo & ok_s & ~found).any():
                    continue
                self._two_pixel_with_searcher(
                    pixels, (c, pr, pc), rho_s, todo & ok_s,
                    known_rho, groups, new_idx, found, rho_new,
                )
        return found, rho_new

    def _two_pixel_with_searcher(
        self,
        pixels,
        searcher_pixel,
        rho_s: np.ndarray,
        eligible: np.ndarray,
        known_rho: np.ndarray,
        groups: list[list[int]],
        new_idx: list[int],
        found: np.ndarray,
        rho_new: np.ndarray,
    ) -> None:
        """Anchor + searcher sweep; updates ``found``/``rho_new`` in place."""
        two_pixels = pixels + [searcher_pixel]
        for v_sign in (1.0, -1.0):
            # Unresolved companions have ratio 0 in known_rho, which
            # the limit treats as never-masking; if they do mask at
            # this anchor, detection simply fails and a smaller
            # anchor is tried.
            v_limit = self._side_limit(groups, new_idx, known_rho, v_sign)
            for scale in (0.9, 0.45, 0.2, 0.08):
                remaining = eligible & ~found
                if not remaining.any():
                    break
                anchor = np.where(remaining, v_sign * scale * v_limit, 0.0)
                for x_sign in (1.0, -1.0):
                    live = remaining & ~found & (np.abs(anchor) > 0)
                    if not live.any():
                        break
                    hi = np.where(live, x_sign * self.x_max, 0.0)
                    g0 = self._measure(
                        two_pixels, np.stack([anchor, np.zeros(self._d)])
                    )
                    g1 = self._measure(two_pixels, np.stack([anchor, hi]))
                    moved = live & (g0 != g1)
                    if not moved.any():
                        continue
                    lo = np.zeros(self._d)
                    cur_hi = hi.copy()
                    for _ in range(self.search_steps):
                        mid = np.where(moved, 0.5 * (lo + cur_hi), 0.0)
                        gm = self._measure(
                            two_pixels, np.stack([anchor, mid])
                        )
                        flipped = gm != g0
                        cur_hi = np.where(moved & flipped, mid, cur_hi)
                        lo = np.where(moved & ~flipped, mid, lo)
                    x_star = 0.5 * (lo + cur_hi)
                    with np.errstate(divide="ignore", invalid="ignore"):
                        rho = -(1.0 + rho_s * x_star) / anchor
                    rho_new[moved & ~found] = rho[moved & ~found]
                    found |= moved

    def _alternate_outputs(self, wi: int, wj: int) -> list[tuple[int, int]]:
        """Conv outputs usable to probe weight (wi, wj), nearest first."""
        t = self.target
        outs = [(0, 0)]
        max_a = min(3, (t.w_ifm - 1 - wi) // t.s_conv, t.w_conv - 1)
        max_b = min(3, (t.w_ifm - 1 - wj) // t.s_conv, t.w_conv - 1)
        for a in range(max_a + 1):
            for b in range(max_b + 1):
                if (a, b) != (0, 0):
                    outs.append((a, b))
        return outs

    def _resolve_weight(
        self,
        c: int,
        i: int,
        j: int,
        ratios: np.ndarray,
        status: np.ndarray,
        bias_pos: np.ndarray,
        base: np.ndarray,
        todo: np.ndarray,
        deep: bool,
    ) -> bool:
        """Attempt to resolve weight (c, i, j) for all ``todo`` filters."""
        progress = False
        pending = todo.copy()
        outputs = self._alternate_outputs(i, j) if deep else [(0, 0)]
        zero_evidence = np.zeros(self._d, dtype=bool)
        for (a, b) in outputs:
            if not pending.any():
                break
            found, rho, proven_zero = self._attempt_probe(
                c, i, j, a, b, ratios, status, bias_pos, base, pending
            )
            if found.any():
                ratios[found, c, i, j] = rho[found]
                status[found, c, i, j] = WeightStatus.RECOVERED
                pending &= ~found
                progress = True
            zero_evidence |= proven_zero
        newly_zero = pending & zero_evidence
        if newly_zero.any():
            ratios[newly_zero, c, i, j] = 0.0
            status[newly_zero, c, i, j] = WeightStatus.ZERO
            pending &= ~newly_zero
            progress = True
        if deep and pending.any() and self.target.has_pool and (i, j) != (0, 0):
            found, rho = self._two_pixel(c, i, j, ratios, status, pending)
            if found.any():
                ratios[found, c, i, j] = rho[found]
                status[found, c, i, j] = WeightStatus.RECOVERED
                pending &= ~found
                progress = True
        if deep and pending.any():
            # Every technique exhausted this round: the weight is either
            # zero with partial visibility or genuinely masked.  Mark
            # masked; a later round may still flip it via new knowledge.
            mark = pending & (status[:, c, i, j] == WeightStatus.UNKNOWN)
            if mark.any():
                status[mark, c, i, j] = WeightStatus.MASKED
        return progress

    # ------------------------------------------------------------------
    # Main driver
    # ------------------------------------------------------------------
    def run(self) -> WeightAttackResult:
        """Run the full attack over every input channel and position.

        With ``workers > 1`` the filter range is split into contiguous
        shards, each recovered in a worker process against a forked
        session; shard results and ledgers are merged back here.
        """
        if resolve_workers(self.workers) > 1:
            return self._run_sharded()
        return self._run_shard_local()

    def _run_shard_local(self) -> WeightAttackResult:
        """Serial recovery of this attack's own filter range."""
        t = self.target
        base = np.asarray(self.channel.query([(0, 0, 0)], [0.0]))
        plane = (t.w_pool if t.has_pool else t.w_conv) ** 2
        bias_pos = base >= plane
        ratios = np.zeros((self._d, t.d_ifm, t.f_conv, t.f_conv))
        status = np.full(
            (self._d, t.d_ifm, t.f_conv, t.f_conv),
            WeightStatus.UNKNOWN,
            dtype=object,
        )
        if t.has_pool:
            # A positive bias keeps every pooled window non-zero for any
            # input: the count never changes and the channel is silent.
            status[bias_pos] = WeightStatus.SATURATED

        positions = [
            (c, i, j)
            for c in range(t.d_ifm)
            for i in range(t.f_conv)
            for j in range(t.f_conv)
        ]

        # Main pass + resolution rounds over alternate probes.
        for round_no in range(1 + self.max_resolution_rounds):
            progress = False
            for (c, i, j) in positions:
                todo = (
                    np.isin(
                        status[:, c, i, j],
                        (WeightStatus.UNKNOWN, WeightStatus.MASKED),
                    )
                    & self._shard_mask
                )
                if not todo.any():
                    continue
                progress |= self._resolve_weight(
                    c, i, j, ratios, status, bias_pos, base, todo,
                    deep=round_no > 0,
                )
            if not progress:
                break

        unknown = (status == WeightStatus.UNKNOWN) & self._shard_mask[
            :, None, None, None
        ]
        status[unknown] = WeightStatus.MASKED

        lo, hi = self.filter_range
        filters = [
            FilterRecovery(
                filter_index=f,
                bias_positive=bool(bias_pos[f]),
                ratios=ratios[f],
                status=status[f],
            )
            for f in range(lo, hi)
        ]
        return WeightAttackResult(
            target=t, filters=filters, queries=self.channel.queries
        )

    def _run_sharded(self) -> WeightAttackResult:
        """Fan the filter range out over worker processes and merge."""
        lo, hi = self.filter_range
        shards = [
            (lo + s_lo, lo + s_hi)
            for s_lo, s_hi in shard_ranges(hi - lo, resolve_workers(self.workers))
        ]
        context = _ShardContext(
            channel=self.channel,
            target=self.target,
            search_steps=self.search_steps,
            max_resolution_rounds=self.max_resolution_rounds,
        )
        # Registry pool: stays warm across layers / repeated attacks on
        # the same victim; the registry owns its lifetime.
        pool = get_pool(
            len(shards), initializer=_shard_init, initargs=(context,)
        )
        shard_results = pool.map(_recover_shard, shards)
        filters: list[FilterRecovery] = []
        for result, ledger in shard_results:
            filters.extend(result.filters)
            self.channel.ledger.merge(ledger)
        filters.sort(key=lambda f: f.filter_index)
        return WeightAttackResult(
            target=self.target, filters=filters, queries=self.channel.queries
        )


@dataclass
class _ShardContext:
    """Worker payload: the parent session plus attack hyper-parameters.

    Under the fork start method the session (and the victim device it
    wraps) is inherited copy-on-write; each worker then *forks the
    session* so its backend oracle is re-instantiated locally and its
    queries land on a private ledger.
    """

    channel: DeviceSession
    target: AttackTarget
    search_steps: int
    max_resolution_rounds: int


_SHARD_CONTEXT: _ShardContext | None = None


def _shard_init(context: _ShardContext) -> None:
    global _SHARD_CONTEXT
    _SHARD_CONTEXT = context


def _recover_shard(filter_range: tuple[int, int]):
    """Recover one contiguous filter shard on a forked session."""
    ctx = _SHARD_CONTEXT
    assert ctx is not None, "worker used before _shard_init"
    session = ctx.channel.fork()
    attack = WeightAttack(
        session,
        ctx.target,
        search_steps=ctx.search_steps,
        max_resolution_rounds=ctx.max_resolution_rounds,
        filter_range=filter_range,
    )
    return attack._run_shard_local(), session.ledger


class SteppedWeightAttack:
    """Checkpointable step/resume runner for the weight attack.

    The filter axis is the attack's natural checkpoint granularity:
    plane ``f``'s reply in a per-filter batch depends only on run ``f``'s
    own input, so a contiguous ``filter_range`` recovers bit-identically
    to its slice of a full run (the same property the sharded parallel
    path rests on).  Each step recovers one filter chunk via
    ``WeightAttack(filter_range=...)`` and serialises the recovered
    ratios/status into the state dict; a killed attack resumes at the
    first missing chunk against a fresh session.  Counter noise is
    content-keyed (never call-order-keyed), so a resumed chunk measures
    exactly what the uninterrupted run would have.

    Args:
        channel: the metered device session (per-plane).
        target: structural knowledge of the attacked stage.
        search_steps, max_resolution_rounds: as :class:`WeightAttack`.
        filters_per_step: chunk width; the last chunk may be narrower.
    """

    def __init__(
        self,
        channel: DeviceSession,
        target: AttackTarget,
        search_steps: int = 64,
        max_resolution_rounds: int = 4,
        filters_per_step: int = 8,
    ) -> None:
        if filters_per_step < 1:
            raise AttackError(
                f"filters_per_step must be >= 1, got {filters_per_step}"
            )
        self.channel = channel
        self.target = target
        self.search_steps = search_steps
        self.max_resolution_rounds = max_resolution_rounds
        self.filters_per_step = filters_per_step

    def _chunks(self) -> list[tuple[int, int]]:
        d = self.target.d_ofm
        step = self.filters_per_step
        return [(lo, min(lo + step, d)) for lo in range(0, d, step)]

    def steps(self) -> list[str]:
        """The deterministic step plan: one entry per filter chunk."""
        return [f"filters:{lo}:{hi}" for lo, hi in self._chunks()]

    def run_step(self, name: str, state: dict | None = None) -> dict:
        """Recover one filter chunk; returns the updated state dict."""
        try:
            _, lo_s, hi_s = name.split(":")
            lo, hi = int(lo_s), int(hi_s)
        except ValueError:
            raise AttackError(f"unknown weight attack step {name!r}") from None
        attack = WeightAttack(
            self.channel,
            self.target,
            search_steps=self.search_steps,
            max_resolution_rounds=self.max_resolution_rounds,
            filter_range=(lo, hi),
        )
        partial = attack._run_shard_local()
        state = dict(state or {})
        filters = dict(state.get("filters", {}))
        for rec in partial.filters:
            filters[str(rec.filter_index)] = {
                "bias_positive": rec.bias_positive,
                "ratios": rec.ratios.tolist(),
                "status": rec.status.tolist(),
            }
        state["filters"] = filters
        return state

    def result(self, state: dict) -> WeightAttackResult:
        """Assemble the full-layer result from a completed state."""
        filters = state.get("filters", {})
        missing = [
            f for f in range(self.target.d_ofm) if str(f) not in filters
        ]
        if missing:
            raise AttackError(
                f"weight attack state incomplete: filters {missing} missing"
            )
        recoveries = [
            FilterRecovery(
                filter_index=f,
                bias_positive=bool(filters[str(f)]["bias_positive"]),
                ratios=np.array(filters[str(f)]["ratios"], dtype=float),
                status=np.array(filters[str(f)]["status"], dtype=object),
            )
            for f in range(self.target.d_ofm)
        ]
        return WeightAttackResult(
            target=self.target,
            filters=recoveries,
            queries=self.channel.queries,
        )

    def run(self, state: dict | None = None) -> WeightAttackResult:
        """Drive every remaining step in order (the resume path skips
        steps recorded in ``state["steps_done"]``)."""
        state = dict(state or {})
        done = list(state.get("steps_done", []))
        for name in self.steps():
            if name in done:
                continue
            state = self.run_step(name, state)
            done.append(name)
            state["steps_done"] = list(done)
        return self.result(state)
