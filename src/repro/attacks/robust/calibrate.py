"""Attacker-side channel calibration from repeated measurements.

Before spending the query budget on the actual attack, an attacker can
spend a small fixed budget estimating *how noisy the channel is* and
size the voting/consensus machinery from the estimate instead of
guessing.  Everything here uses only the sanctioned session surface:

* **counter noise** — re-measure a handful of fixed probe inputs
  ``repeats`` times each via
  :meth:`~repro.device.DeviceSession.query_repeat`.  The device is
  deterministic, so any spread across rows is channel noise: the
  sample standard deviation estimates ``counter_sigma`` and the GCD of
  count differences exposes ``counter_quantum`` (a quantised read-out
  makes counts move in multiples of the quantum).  Several probe
  values are used and the largest spread kept, because the counter is
  clipped at zero: a probe whose true count is 0 sees only the
  positive half of the noise and understates sigma by ~40%.
* **event dispersion** — repeat :meth:`observe_structure` with a
  counting sink and compare per-run event totals.  Independent
  per-event drop ``p`` / duplication ``q`` make the total's
  variance-to-mean ratio ``≈ p + q`` (a clean channel is
  deterministic: dispersion 0).  Drops and duplications are *not*
  separable from totals alone — both inflate dispersion the same way —
  so the estimate is reported as a single loss+dup rate, which is all
  the consensus estimators need to size their quorum.
* **power noise** — repeat :meth:`observe_power` on one fixed input
  and compare the traces bin by bin.  The clean proxy is
  deterministic, so per-bin spread across runs is probe read-out
  noise: the pooled residual std over *active* bins estimates
  ``power_sigma`` (quiet bins are clipped at zero and would understate
  it, same clip caveat as the counter) and the GCD of cross-run
  deviations exposes ``power_quantum``.  The active-bin plateau level
  is reported alongside because sigma alone says nothing — what the
  fused estimator needs is the *ratio*: power segmentation is
  trustworthy (and one fused run replaces the multi-run memory
  consensus) only while sigma stays a small fraction of the plateau.

The estimated sigma feeds :func:`~repro.attacks.robust.vote.required_repeats`
to produce ``recommended_repeats``; sigma estimates are biased low when
the quantum exceeds the noise scale (quantisation swallows sub-quantum
spread), which is conservative for the attack only if the quantum is
also honoured — hence both are reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.attacks.robust.vote import required_repeats
from repro.device import DeviceSession
from repro.errors import ConfigError

__all__ = ["ChannelCalibration", "calibrate_channel"]


@dataclass(frozen=True)
class ChannelCalibration:
    """What the attacker learned about the measurement channel.

    Attributes:
        counter_sigma: estimated std-dev of the nnz counter read-out
            (None when the counter channel was not probed).
        counter_quantum: estimated counter granularity — observed
            counts move in multiples of it (None when not probed;
            1 when no quantisation was observed).
        event_dispersion: variance-to-mean ratio of per-run trace event
            totals, ``≈ drop_rate + dup_rate`` (None when not probed).
        power_sigma: estimated std-dev of the power-proxy read-out on
            active bins (None when the power channel was not probed).
        power_quantum: estimated power read-out granularity (None when
            not probed; 1 when no quantisation was observed).
        power_plateau: median active-bin level of the probed trace —
            the scale ``power_sigma`` must be compared against.
        counter_repeats: measurements spent probing the counter.
        trace_runs: observation runs spent probing the trace.
        power_runs: observation runs spent probing the power channel.
        recommended_repeats: voting repeats sized for the estimated
            sigma at the default per-decision confidence (1 when the
            counter looks clean or was not probed).
    """

    counter_sigma: float | None = None
    counter_quantum: int | None = None
    event_dispersion: float | None = None
    power_sigma: float | None = None
    power_quantum: int | None = None
    power_plateau: float | None = None
    counter_repeats: int = 0
    trace_runs: int = 0
    power_runs: int = 0

    @property
    def recommended_repeats(self) -> int:
        if self.counter_sigma is None or self.counter_sigma <= 0.0:
            return 1
        return required_repeats(self.counter_sigma)

    @property
    def power_informative(self) -> bool:
        """Whether power segmentation can be trusted at this SNR.

        The active/quiet threshold sits at a quarter of the plateau
        (see :func:`repro.attacks.fusion.segment.power_threshold`), so
        the mask stays clean while sigma is at most ~an eighth of the
        plateau — beyond that, noise crosses the threshold bin by bin
        and the segmentation shatters.
        """
        return (
            self.power_sigma is not None
            and self.power_plateau is not None
            and self.power_sigma <= self.power_plateau / 8.0
        )

    @property
    def recommended_fusion_runs(self) -> int:
        """Observation runs the fused estimator should budget.

        One run suffices when the power channel is informative (the
        power veto substitutes for cross-run consensus); otherwise
        fall back to the memory-only consensus default of 3 runs.
        """
        return 1 if self.power_informative else 3

    def describe(self) -> str:
        parts = []
        if self.counter_sigma is not None:
            parts.append(
                f"counter sigma~{self.counter_sigma:.3f} "
                f"quantum~{self.counter_quantum} "
                f"({self.counter_repeats} reads, "
                f"recommend {self.recommended_repeats} repeats)"
            )
        if self.event_dispersion is not None:
            parts.append(
                f"trace loss+dup~{self.event_dispersion:.4f} "
                f"({self.trace_runs} runs)"
            )
        if self.power_sigma is not None:
            parts.append(
                f"power sigma~{self.power_sigma:.3f} "
                f"quantum~{self.power_quantum} "
                f"plateau~{self.power_plateau:.0f} "
                f"({self.power_runs} runs, fusion "
                f"{'informative' if self.power_informative else 'degraded'}: "
                f"recommend {self.recommended_fusion_runs} run(s))"
            )
        return "; ".join(parts) if parts else "channel not probed"


def _estimate_quantum(stack: np.ndarray) -> int:
    """GCD of observed count deviations: the counter's step size."""
    deltas = np.abs(stack - stack[0:1]).ravel()
    g = 0
    for d in np.unique(deltas[deltas > 0]).tolist():
        g = math.gcd(g, int(d))
    return g if g > 0 else 1


def calibrate_channel(
    session: DeviceSession,
    repeats: int = 32,
    runs: int = 0,
    power_runs: int = 0,
) -> ChannelCalibration:
    """Probe the channel with null measurements; see module docstring.

    Args:
        session: the device session under calibration.  The counter is
            probed when the device leaks the zero-pruning channel
            (``session.pruning_enabled``); the trace side is probed
            only when ``runs > 0`` *and* the device is dense-write
            (the structure observation's threat-model precondition).
        repeats: counter reads of the null input (>= 2 to estimate a
            spread).
        runs: trace observation runs (0 skips the trace probe).
        power_runs: power observation runs (0 skips the power probe;
            >= 2 to estimate a spread).  The power probe has no
            dense-write precondition — it listens to the rail, not
            the bus.

    All probes are charged to the session ledger like any other query.
    """
    if repeats < 2:
        raise ConfigError(f"repeats must be >= 2, got {repeats}")
    if runs < 0:
        raise ConfigError(f"runs must be >= 0, got {runs}")
    if power_runs == 1:
        raise ConfigError("power_runs must be 0 or >= 2 to estimate a spread")
    if power_runs < 0:
        raise ConfigError(f"power_runs must be >= 0, got {power_runs}")

    counter_sigma: float | None = None
    counter_quantum: int | None = None
    counter_reads = 0
    if session.pruning_enabled:
        lo, hi = session.input_range
        # Spread probes over the input domain so at least one lands on
        # a count far from the zero clip (see module docstring).
        sigmas, quanta = [], []
        for value in (0.0, hi / 16.0, hi / 2.0, lo / 2.0):
            stack = session.query_repeat([(0, 0, 0)], [value], repeats)
            counter_reads += repeats
            sigmas.append(float(stack.std(axis=0, ddof=1).max()))
            quanta.append(_estimate_quantum(stack))
        counter_sigma = max(sigmas)
        counter_quantum = max(quanta)

    dispersion: float | None = None
    trace_runs = 0
    if runs > 0 and not session.pruning_enabled:
        totals = []
        for _ in range(runs):
            counter = _EventCounter()
            session.observe_structure(sink=counter)
            totals.append(counter.events)
        trace_runs = runs
        arr = np.asarray(totals, dtype=float)
        mean = arr.mean()
        dispersion = float(arr.var(ddof=1) / mean) if mean > 0 else 0.0

    power_sigma: float | None = None
    power_quantum: int | None = None
    power_plateau: float | None = None
    power_probes = 0
    if power_runs > 0:
        stack = np.stack(
            [
                np.asarray(session.observe_power(seed=0).samples)
                for _ in range(power_runs)
            ]
        )
        power_probes = power_runs
        mean = stack.mean(axis=0)
        # Restrict to plateau bins: quiet bins are clipped at zero
        # (one-sided noise) and would bias sigma low.
        bar = max(1.0, float(np.quantile(mean, 0.75)) / 4.0)
        active = mean > bar
        if active.any():
            resid = stack[:, active] - mean[active]
            # Pooled residual variance; each active bin's mean eats one
            # degree of freedom.
            dof = max(1, resid.size - int(active.sum()))
            power_sigma = float(np.sqrt(np.sum(resid**2) / dof))
            power_quantum = _estimate_quantum(stack[:, active])
            power_plateau = float(np.median(mean[active]))

    return ChannelCalibration(
        counter_sigma=counter_sigma,
        counter_quantum=counter_quantum,
        event_dispersion=dispersion,
        power_sigma=power_sigma,
        power_quantum=power_quantum,
        power_plateau=power_plateau,
        counter_repeats=counter_reads,
        trace_runs=trace_runs,
        power_runs=power_probes,
    )


class _EventCounter:
    """Minimal sink: counts post-channel events, retains nothing."""

    def __init__(self) -> None:
        self.events = 0

    def emit(self, span) -> None:
        self.events += len(span)

    def begin_stage(self, name: str, kind: str) -> None:
        pass

    def close(self) -> None:
        pass
