"""Noise-robust layer-boundary recovery over a lossy trace channel.

:func:`recover_boundaries` is the structure attack's front line under a
noisy channel: it takes several metered observation runs (each run
draws independent channel noise), detects boundaries per run with the
hysteresis tracker, and keeps only boundaries a quorum of runs agrees
on.  For the ablation bench it can simultaneously run the paper's
naive single-event RAW rule on the *same* post-channel streams, so
robust and naive estimators are compared on identical noise draws.

Each observation streams into the trackers through a local fan-out
(one pass, two consumers) rather than materialising the trace — the
memory profile stays O(chunk) however long the trace is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.robust.boundary import (
    RobustRawBoundaryTracker,
    consensus_boundaries,
)
from repro.attacks.structure.trace_analysis import RawBoundaryTracker
from repro.device import CoalescingSink, DeviceSession
from repro.errors import ConfigError

__all__ = [
    "RawBoundaryCycleSink",
    "RobustStructureResult",
    "BoundaryRecovery",
    "recover_boundaries",
    "boundary_cycles_from_trace",
]


class RawBoundaryCycleSink:
    """The paper's naive RAW rule as a sink, reporting boundary cycles.

    Adapts the streaming :class:`RawBoundaryTracker` (which speaks
    event indices) to cycle space so its output is comparable across
    runs of a channel that drops and duplicates events (indices shift;
    cycle stamps survive).
    """

    def __init__(self, engine: str = "vectorised") -> None:
        self._tracker = RawBoundaryTracker(engine=engine)
        self._cycles: list[int] = []

    @property
    def boundary_cycles(self) -> list[int]:
        return list(self._cycles)

    def emit(self, span) -> None:
        base = self._tracker.num_events
        if base == 0 and len(span):
            self._cycles.append(int(span.cycles[0]))
        for idx in self._tracker.feed(span.addresses, span.is_write):
            self._cycles.append(int(span.cycles[idx - base]))

    def begin_stage(self, name: str, kind: str) -> None:
        pass

    def close(self) -> None:
        pass


class _FanOutSink:
    """One span stream, several consumers — a local tee.

    The accel-layer :class:`~repro.accel.sinks.TeeSink` is off limits
    here (attack modules may not import simulator-side machinery), and
    nothing more is needed: forward every call to each consumer.
    """

    def __init__(self, *sinks) -> None:
        self._sinks = sinks

    def emit(self, span) -> None:
        for s in self._sinks:
            s.emit(span)

    def begin_stage(self, name: str, kind: str) -> None:
        for s in self._sinks:
            s.begin_stage(name, kind)

    def close(self) -> None:
        for s in self._sinks:
            s.close()


@dataclass(frozen=True)
class RobustStructureResult:
    """Outcome of multi-run consensus boundary recovery.

    Attributes:
        boundaries: consensus boundary cycles (quorum-filtered).
        runs: per-run robust boundary cycles, one list per observation.
        naive_runs: per-run naive-rule boundary cycles on the same
            streams (empty unless ``compare_naive``).
        quorum: the quorum that filtered the consensus.
        tol: the clustering tolerance, in cycles.
    """

    boundaries: list[int]
    runs: list[list[int]]
    naive_runs: list[list[int]] = field(default_factory=list)
    quorum: int = 1
    tol: int = 0

    @property
    def num_layers(self) -> int:
        """One recovered layer per consensus boundary."""
        return len(self.boundaries)


class BoundaryRecovery:
    """Checkpointable step/resume runner for consensus boundary recovery.

    One ``run:k`` step per observation run plus a final device-free
    ``consensus`` step; each run's boundary cycles (robust and, with
    ``compare_naive``, naive) are plain int lists, so the state dict is
    JSON-serialisable as-is.  Run ``k`` observes with an explicit run
    index (``observe_structure(run=k)``), pinning its channel noise
    stream — a killed recovery resumed on a fresh session replays the
    remaining runs under exactly the noise the uninterrupted run would
    have drawn, making resume bit-identical.

    Parameters are those of :func:`recover_boundaries`, which is the
    thin all-steps-in-order driver over this class.
    """

    def __init__(
        self,
        session: DeviceSession,
        runs: int = 3,
        *,
        min_support: int = 3,
        expiry: int = 4096,
        refractory: int | None = None,
        quorum: int | None = None,
        tol: int | None = None,
        seed: int = 0,
        compare_naive: bool = False,
        dataflow: str = "output-stationary",
        engine: str = "vectorised",
    ) -> None:
        if runs < 1:
            raise ConfigError(f"runs must be >= 1, got {runs}")
        if quorum is not None and not 1 <= quorum <= runs:
            raise ConfigError(f"quorum must be in [1, {runs}], got {quorum}")
        window = session.channel.latency_window
        self.session = session
        self.runs = runs
        self.min_support = min_support
        self.expiry = expiry
        self.refractory = window if refractory is None else refractory
        self.quorum = quorum if quorum is not None else runs // 2 + 1
        self.tol = max(1, window // 4) if tol is None else tol
        self.seed = seed
        self.compare_naive = compare_naive
        self.engine = engine
        self.producer_refractory = (
            self.refractory if dataflow == "output-stationary" else 0
        )

    def steps(self) -> list[str]:
        """The deterministic step plan for this recovery."""
        return [f"run:{k}" for k in range(self.runs)] + ["consensus"]

    def run_step(self, name: str, state: dict | None = None) -> dict:
        """Execute one named step, returning the updated state dict."""
        state = dict(state or {})
        if name.startswith("run:"):
            return self._step_run(int(name.split(":", 1)[1]), state)
        if name == "consensus":
            return self._step_consensus(state)
        raise ConfigError(f"unknown boundary recovery step {name!r}")

    def _step_run(self, k: int, state: dict) -> dict:
        robust = RobustRawBoundaryTracker(
            min_support=self.min_support,
            expiry=self.expiry,
            refractory=self.refractory,
            producer_refractory=self.producer_refractory,
            engine=self.engine,
        )
        if self.compare_naive:
            naive = RawBoundaryCycleSink(engine=self.engine)
            sink = _FanOutSink(robust, naive)
        else:
            naive = None
            sink = robust
        # Coalesce upstream of the fan-out: the channel's reorder buffer
        # delivers fragmented spans, and both decoders are chunking
        # invariant, so fewer/larger chunks is pure decode throughput.
        self.session.observe_structure(
            seed=self.seed, sink=CoalescingSink(sink), run=k
        )
        runs = dict(state.get("runs", {}))
        runs[str(k)] = [int(c) for c in robust.boundary_cycles]
        state["runs"] = runs
        if naive is not None:
            naive_runs = dict(state.get("naive_runs", {}))
            naive_runs[str(k)] = [int(c) for c in naive.boundary_cycles]
            state["naive_runs"] = naive_runs
        return state

    def _step_consensus(self, state: dict) -> dict:
        runs = state.get("runs", {})
        missing = [k for k in range(self.runs) if str(k) not in runs]
        if missing:
            raise ConfigError(
                f"consensus step needs all {self.runs} runs; missing {missing}"
            )
        per_run = [runs[str(k)] for k in range(self.runs)]
        state["boundaries"] = [
            int(b)
            for b in consensus_boundaries(
                per_run, quorum=self.quorum, tol=self.tol
            )
        ]
        return state

    def result(self, state: dict) -> RobustStructureResult:
        """Assemble the final result from a completed state."""
        if "boundaries" not in state:
            state = self._step_consensus(dict(state))
        runs = state["runs"]
        naive_runs = state.get("naive_runs", {})
        return RobustStructureResult(
            boundaries=list(state["boundaries"]),
            runs=[list(runs[str(k)]) for k in range(self.runs)],
            naive_runs=[
                list(naive_runs[str(k)])
                for k in range(self.runs)
                if str(k) in naive_runs
            ],
            quorum=self.quorum,
            tol=int(self.tol),
        )

    def run(self, state: dict | None = None) -> RobustStructureResult:
        """Drive every remaining step in order (the resume path skips
        steps recorded in ``state["steps_done"]``)."""
        state = dict(state or {})
        done = list(state.get("steps_done", []))
        for name in self.steps():
            if name in done:
                continue
            state = self.run_step(name, state)
            done.append(name)
            state["steps_done"] = list(done)
        return self.result(state)


def recover_boundaries(
    session: DeviceSession,
    runs: int = 3,
    *,
    min_support: int = 3,
    expiry: int = 4096,
    refractory: int | None = None,
    quorum: int | None = None,
    tol: int | None = None,
    seed: int = 0,
    compare_naive: bool = False,
    dataflow: str = "output-stationary",
    engine: str = "vectorised",
) -> RobustStructureResult:
    """Recover layer-boundary cycles by multi-run consensus.

    A thin driver over :class:`BoundaryRecovery` (the checkpointable
    step runner); running every step in order in-process is
    bit-identical to the historical monolithic implementation.

    The per-run refractory and the cross-run clustering tolerance both
    default from the channel's latency window — a property of the
    attacker's *own probe*, so presuming it violates nothing in the
    threat model: echoes of a transition appear for up to one window
    after it (suppressed per run), while independent runs place the
    same true boundary within a fraction of the window of each other
    (clustered across runs at ``window // 4``).

    Args:
        session: the metered device session (its channel model decides
            how noisy each observation run is).
        runs: independent observation runs to stack.
        min_support: hysteresis support per run (see
            :class:`RobustRawBoundaryTracker`).
        expiry: candidate expiry window per run, in events.
        refractory: post-commit suppression window per run, in cycles
            (default: the channel's latency window).
        quorum: runs that must agree on a boundary (default: strict
            majority, ``runs // 2 + 1``).
        tol: clustering tolerance in cycles (default: a quarter of the
            latency window).
        seed: seed of the generic observation input (same input every
            run — only the channel noise varies across runs).
        compare_naive: also run the naive single-event RAW rule on the
            identical post-channel streams, for ablation.
        dataflow: the victim's (identified) dataflow.  Output-stationary
            victims drain each OFM in one stage-end burst, so any write
            delivered near a committed boundary is a channel echo and
            is disqualified as a RAW producer for the full refractory.
            Weight- and row-stationary victims stream OFM bursts from
            the very start of each stage — there the producer filter
            would eat the next boundary's genuine evidence, so it is
            disabled and forged edges are left to ``min_support`` and
            the cross-run quorum (see
            :class:`RobustRawBoundaryTracker`).
        engine: per-run decode engine — ``"vectorised"`` (default) or
            the original ``"reference"`` oracle; boundaries are
            bit-identical.
    """
    return BoundaryRecovery(
        session,
        runs,
        min_support=min_support,
        expiry=expiry,
        refractory=refractory,
        quorum=quorum,
        tol=tol,
        seed=seed,
        compare_naive=compare_naive,
        dataflow=dataflow,
        engine=engine,
    ).run()


def boundary_cycles_from_trace(trace) -> list[int]:
    """Ground-truth boundary cycles from a clean materialised trace.

    Convenience for benches: run the naive rule on an *ideal-channel*
    trace (where it is exact) and map boundary indices to cycles.
    """
    tracker = RawBoundaryTracker()
    tracker.feed(trace.addresses, trace.is_write)
    cycles = np.asarray(trace.cycles, dtype=np.int64)
    return [int(cycles[i]) for i in tracker.boundaries]
