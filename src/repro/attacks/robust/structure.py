"""Noise-robust layer-boundary recovery over a lossy trace channel.

:func:`recover_boundaries` is the structure attack's front line under a
noisy channel: it takes several metered observation runs (each run
draws independent channel noise), detects boundaries per run with the
hysteresis tracker, and keeps only boundaries a quorum of runs agrees
on.  For the ablation bench it can simultaneously run the paper's
naive single-event RAW rule on the *same* post-channel streams, so
robust and naive estimators are compared on identical noise draws.

Each observation streams into the trackers through a local fan-out
(one pass, two consumers) rather than materialising the trace — the
memory profile stays O(chunk) however long the trace is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.robust.boundary import (
    RobustRawBoundaryTracker,
    consensus_boundaries,
)
from repro.attacks.structure.trace_analysis import RawBoundaryTracker
from repro.device import CoalescingSink, DeviceSession
from repro.errors import ConfigError

__all__ = [
    "RawBoundaryCycleSink",
    "RobustStructureResult",
    "recover_boundaries",
    "boundary_cycles_from_trace",
]


class RawBoundaryCycleSink:
    """The paper's naive RAW rule as a sink, reporting boundary cycles.

    Adapts the streaming :class:`RawBoundaryTracker` (which speaks
    event indices) to cycle space so its output is comparable across
    runs of a channel that drops and duplicates events (indices shift;
    cycle stamps survive).
    """

    def __init__(self, engine: str = "vectorised") -> None:
        self._tracker = RawBoundaryTracker(engine=engine)
        self._cycles: list[int] = []

    @property
    def boundary_cycles(self) -> list[int]:
        return list(self._cycles)

    def emit(self, span) -> None:
        base = self._tracker.num_events
        if base == 0 and len(span):
            self._cycles.append(int(span.cycles[0]))
        for idx in self._tracker.feed(span.addresses, span.is_write):
            self._cycles.append(int(span.cycles[idx - base]))

    def begin_stage(self, name: str, kind: str) -> None:
        pass

    def close(self) -> None:
        pass


class _FanOutSink:
    """One span stream, several consumers — a local tee.

    The accel-layer :class:`~repro.accel.sinks.TeeSink` is off limits
    here (attack modules may not import simulator-side machinery), and
    nothing more is needed: forward every call to each consumer.
    """

    def __init__(self, *sinks) -> None:
        self._sinks = sinks

    def emit(self, span) -> None:
        for s in self._sinks:
            s.emit(span)

    def begin_stage(self, name: str, kind: str) -> None:
        for s in self._sinks:
            s.begin_stage(name, kind)

    def close(self) -> None:
        for s in self._sinks:
            s.close()


@dataclass(frozen=True)
class RobustStructureResult:
    """Outcome of multi-run consensus boundary recovery.

    Attributes:
        boundaries: consensus boundary cycles (quorum-filtered).
        runs: per-run robust boundary cycles, one list per observation.
        naive_runs: per-run naive-rule boundary cycles on the same
            streams (empty unless ``compare_naive``).
        quorum: the quorum that filtered the consensus.
        tol: the clustering tolerance, in cycles.
    """

    boundaries: list[int]
    runs: list[list[int]]
    naive_runs: list[list[int]] = field(default_factory=list)
    quorum: int = 1
    tol: int = 0

    @property
    def num_layers(self) -> int:
        """One recovered layer per consensus boundary."""
        return len(self.boundaries)


def recover_boundaries(
    session: DeviceSession,
    runs: int = 3,
    *,
    min_support: int = 3,
    expiry: int = 4096,
    refractory: int | None = None,
    quorum: int | None = None,
    tol: int | None = None,
    seed: int = 0,
    compare_naive: bool = False,
    dataflow: str = "output-stationary",
    engine: str = "vectorised",
) -> RobustStructureResult:
    """Recover layer-boundary cycles by multi-run consensus.

    The per-run refractory and the cross-run clustering tolerance both
    default from the channel's latency window — a property of the
    attacker's *own probe*, so presuming it violates nothing in the
    threat model: echoes of a transition appear for up to one window
    after it (suppressed per run), while independent runs place the
    same true boundary within a fraction of the window of each other
    (clustered across runs at ``window // 4``).

    Args:
        session: the metered device session (its channel model decides
            how noisy each observation run is).
        runs: independent observation runs to stack.
        min_support: hysteresis support per run (see
            :class:`RobustRawBoundaryTracker`).
        expiry: candidate expiry window per run, in events.
        refractory: post-commit suppression window per run, in cycles
            (default: the channel's latency window).
        quorum: runs that must agree on a boundary (default: strict
            majority, ``runs // 2 + 1``).
        tol: clustering tolerance in cycles (default: a quarter of the
            latency window).
        seed: seed of the generic observation input (same input every
            run — only the channel noise varies across runs).
        compare_naive: also run the naive single-event RAW rule on the
            identical post-channel streams, for ablation.
        dataflow: the victim's (identified) dataflow.  Output-stationary
            victims drain each OFM in one stage-end burst, so any write
            delivered near a committed boundary is a channel echo and
            is disqualified as a RAW producer for the full refractory.
            Weight- and row-stationary victims stream OFM bursts from
            the very start of each stage — there the producer filter
            would eat the next boundary's genuine evidence, so it is
            disabled and forged edges are left to ``min_support`` and
            the cross-run quorum (see
            :class:`RobustRawBoundaryTracker`).
        engine: per-run decode engine — ``"vectorised"`` (default) or
            the original ``"reference"`` oracle; boundaries are
            bit-identical.
    """
    if runs < 1:
        raise ConfigError(f"runs must be >= 1, got {runs}")
    if quorum is not None and not 1 <= quorum <= runs:
        raise ConfigError(f"quorum must be in [1, {runs}], got {quorum}")
    window = session.channel.latency_window
    if refractory is None:
        refractory = window
    if tol is None:
        tol = max(1, window // 4)
    producer_refractory = (
        refractory if dataflow == "output-stationary" else 0
    )

    per_run: list[list[int]] = []
    naive_runs: list[list[int]] = []
    for _ in range(runs):
        robust = RobustRawBoundaryTracker(
            min_support=min_support,
            expiry=expiry,
            refractory=refractory,
            producer_refractory=producer_refractory,
            engine=engine,
        )
        if compare_naive:
            naive = RawBoundaryCycleSink(engine=engine)
            sink = _FanOutSink(robust, naive)
        else:
            naive = None
            sink = robust
        # Coalesce upstream of the fan-out: the channel's reorder buffer
        # delivers fragmented spans, and both decoders are chunking
        # invariant, so fewer/larger chunks is pure decode throughput.
        session.observe_structure(seed=seed, sink=CoalescingSink(sink))
        per_run.append(robust.boundary_cycles)
        if naive is not None:
            naive_runs.append(naive.boundary_cycles)

    q = quorum if quorum is not None else runs // 2 + 1
    consensus = consensus_boundaries(per_run, quorum=q, tol=tol)
    return RobustStructureResult(
        boundaries=consensus,
        runs=per_run,
        naive_runs=naive_runs,
        quorum=q,
        tol=int(tol),
    )


def boundary_cycles_from_trace(trace) -> list[int]:
    """Ground-truth boundary cycles from a clean materialised trace.

    Convenience for benches: run the naive rule on an *ideal-channel*
    trace (where it is exact) and map boundary indices to cycles.
    """
    tracker = RawBoundaryTracker()
    tracker.feed(trace.addresses, trace.is_write)
    cycles = np.asarray(trace.cycles, dtype=np.int64)
    return [int(cycles[i]) for i in tracker.boundaries]
