"""Consensus boundary detection for noisy trace streams.

The paper's Section 3.1 rule — a layer starts at the first read of an
address written since the previous boundary — is exact on a perfect
tap but brittle on a real one.  Under a lossy, latency-reordering,
granularity-truncated channel two artefacts appear:

* a *delayed OFM write* delivered amid the next layer's reads forges a
  RAW edge mid-layer (the naive tracker commits a false boundary on a
  single event);
* *address truncation* aliases neighbouring regions, adding spurious
  last-write entries.

Both artefacts are thin: they contribute RAW reads on a handful of
distinct addresses.  A genuine layer start is thick — the new layer
immediately streams its whole IFM, hundreds of distinct freshly
written blocks.  :class:`RobustRawBoundaryTracker` therefore commits a
boundary only after a *candidate* RAW read is corroborated by
``min_support`` distinct RAW addresses within an ``expiry`` window
(hysteresis), and :func:`consensus_boundaries` stacks several
observation runs — each with independent channel noise — keeping only
boundaries seen by a quorum of runs.  :func:`boundary_f1` scores a
recovered boundary list against ground truth in cycle space (event
indices shift under drops and duplication; cycle stamps survive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.structure.decode import LastWriterIndex, resolve_engine
from repro.attacks.structure.trace_analysis import _previous_write_index
from repro.errors import ConfigError

__all__ = [
    "RobustRawBoundaryTracker",
    "consensus_boundaries",
    "boundary_f1",
    "BoundaryScore",
]


class RobustRawBoundaryTracker:
    """Streaming RAW boundary detector with support-based hysteresis.

    Implements the trace-sink protocol, so it can be handed straight to
    :meth:`repro.device.DeviceSession.observe_structure` as ``sink``.

    Args:
        min_support: distinct RAW-read addresses required before a
            candidate boundary commits.  1 reduces to the naive rule.
        expiry: events a candidate may wait for support before being
            discarded as a channel artefact.
        refractory: *cycles* after a committed boundary during which
            new candidates are ignored.  Channel latency makes a
            boundary echo — late (or duplicated) events of the finished
            layer delivered just after the transition — so a candidate
            arriving within the window cannot be trusted as a fresh
            layer start.  The natural setting is the channel's
            :attr:`~repro.channel.ChannelModel.latency_window`.  A
            layer shorter than the window is unresolvable by any
            estimator on that channel; the refractory makes that limit
            explicit instead of emitting echo boundaries.
        producer_refractory: *cycles* after a committed boundary within
            which writes do not qualify as RAW producers (default: same
            as ``refractory``).  This guards against the echo's second
            face: a late write of the finished layer's OFM whose
            address the new layer re-reads much later (tiled conv
            re-fetches IFM rows), forging RAW edges arbitrarily far
            downstream.  It presumes writes delivered near a committed
            boundary belong to the *old* layer — true for an
            output-stationary victim, which drains its OFM in one
            stage-end burst far from its own stage start, but false
            for weight- and row-stationary schedules, which stream
            OFM bursts from the very start of each stage: there the
            producing writes of the *next* genuine boundary can land
            within the window of the current one, and this filter
            would eat them.  Pass ``0`` for such dataflows and let
            ``min_support`` plus cross-run consensus reject forged
            edges instead.
        engine: ``"vectorised"`` (the default) processes candidate RAW
            reads in segments — one batched pass per candidacy window
            instead of one Python iteration per event — and carries the
            last-write map as a
            :class:`~repro.attacks.structure.decode.LastWriterIndex`.
            ``engine="reference"`` keeps the original per-event
            hysteresis loop as the bit-identity oracle.  Committed
            boundaries and their cycles are identical for any chunking.
    """

    def __init__(
        self,
        min_support: int = 3,
        expiry: int = 4096,
        refractory: int = 0,
        producer_refractory: int | None = None,
        engine: str = "vectorised",
    ) -> None:
        self._engine = resolve_engine(engine)
        if min_support < 1:
            raise ConfigError(f"min_support must be >= 1, got {min_support}")
        if expiry < min_support:
            raise ConfigError(
                f"expiry ({expiry}) must allow min_support ({min_support}) "
                f"events to accrue"
            )
        if refractory < 0:
            raise ConfigError(f"refractory must be >= 0, got {refractory}")
        if producer_refractory is None:
            producer_refractory = refractory
        if producer_refractory < 0:
            raise ConfigError(
                f"producer_refractory must be >= 0, got {producer_refractory}"
            )
        self.min_support = min_support
        self.expiry = expiry
        self.refractory = refractory
        self.producer_refractory = producer_refractory
        self._n = 0
        self._start = 0
        self._last_commit_cycle = 0
        self._boundaries: list[int] = [0]
        self._boundary_cycles: list[int] = []
        # address -> (global index, delivered cycle) of its last write
        self._last_write: dict[int, tuple[int, int]] = {}
        self._index = (
            LastWriterIndex(track_cycles=True)
            if self._engine == "vectorised"
            else None
        )
        self._cand_index: int | None = None
        self._cand_cycle = 0
        self._cand_support: set[int] = set()

    # -- results -----------------------------------------------------------
    @property
    def num_events(self) -> int:
        return self._n

    @property
    def boundaries(self) -> list[int]:
        """Committed boundary event indices (0 is always a boundary)."""
        return list(self._boundaries)

    @property
    def boundary_cycles(self) -> list[int]:
        """Cycle stamps of the committed boundaries, same order."""
        return list(self._boundary_cycles)

    # -- sink protocol -----------------------------------------------------
    def emit(self, span) -> None:
        self.feed(span.cycles, span.addresses, span.is_write)

    def begin_stage(self, name: str, kind: str) -> None:
        pass

    def close(self) -> None:
        pass

    # -- streaming ---------------------------------------------------------
    def feed(
        self,
        cycles: np.ndarray,
        addresses: np.ndarray,
        is_write: np.ndarray,
    ) -> list[int]:
        """Fold one event chunk; returns boundaries committed in it."""
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        cycles = np.asarray(cycles, dtype=np.int64)
        n = len(addresses)
        if n == 0:
            return []
        base = self._n
        if base == 0:
            self._boundary_cycles.append(int(cycles[0]))
            self._last_commit_cycle = int(cycles[0])
        # Previous-write indices and cycles: local edges vectorised,
        # cross-chunk edges via the carried address→last-write map (the
        # same incremental scheme as the naive streaming tracker).
        local_prev = _previous_write_index(addresses, is_write)
        prev = np.where(local_prev >= 0, base + local_prev, np.int64(-1))
        prev_cyc = np.where(
            local_prev >= 0, cycles[local_prev], np.int64(-1)
        )
        carried_needed = local_prev < 0
        if carried_needed.any():
            if self._index is not None:
                g, cy = self._index.lookup(addresses[carried_needed])
                prev[carried_needed] = g
                prev_cyc[carried_needed] = cy
            else:
                uniq, inv = np.unique(
                    addresses[carried_needed], return_inverse=True
                )
                carried = np.array(
                    [self._last_write.get(int(a), (-1, -1)) for a in uniq],
                    dtype=np.int64,
                ).reshape(len(uniq), 2)
                prev[carried_needed] = carried[inv, 0]
                prev_cyc[carried_needed] = carried[inv, 1]

        cand_local = np.flatnonzero((~is_write) & (prev >= 0))
        if self._engine == "vectorised":
            new = self._scan_candidates(
                cand_local, base, cycles, addresses, prev, prev_cyc
            )
        else:
            new = self._scan_candidates_reference(
                cand_local, base, cycles, addresses, prev, prev_cyc
            )

        w = np.flatnonzero(is_write)
        if len(w):
            if self._index is not None:
                self._index.update(addresses[w], base + w, cycles[w])
            else:
                wa = addresses[w]
                uniq_w, rev_first = np.unique(wa[::-1], return_index=True)
                last_local = w[len(wa) - 1 - rev_first]
                for a, g, cy in zip(
                    uniq_w.tolist(),
                    (base + last_local).tolist(),
                    cycles[last_local].tolist(),
                ):
                    self._last_write[a] = (g, cy)

        self._n += n
        return new

    def _scan_candidates_reference(
        self, cand_local, base, cycles, addresses, prev, prev_cyc
    ) -> list[int]:
        """The original per-event hysteresis loop — the oracle."""
        new: list[int] = []
        for li in cand_local.tolist():
            gi = base + li
            if (
                self._cand_index is not None
                and gi - self._cand_index > self.expiry
            ):
                # Support never arrived: a channel artefact, not a layer.
                self._cand_index = None
                self._cand_support.clear()
            if prev[li] < self._start:
                continue  # not a RAW read under the current window
            if (
                prev_cyc[li]
                < self._last_commit_cycle + self.producer_refractory
            ):
                # The producing write was delivered inside the previous
                # boundary's echo window — a late or duplicated copy of
                # the finished layer's output, not new-layer evidence.
                continue
            addr = int(addresses[li])
            if self._cand_index is None:
                if int(cycles[li]) - self._last_commit_cycle < self.refractory:
                    continue  # echo of the previous transition
                self._cand_index = gi
                self._cand_cycle = int(cycles[li])
                self._cand_support = {addr}
            else:
                self._cand_support.add(addr)
            if len(self._cand_support) >= self.min_support:
                self._start = self._cand_index
                self._last_commit_cycle = self._cand_cycle
                self._boundaries.append(self._cand_index)
                self._boundary_cycles.append(self._cand_cycle)
                new.append(self._cand_index)
                self._cand_index = None
                self._cand_support.clear()
        return new

    def _scan_candidates(
        self, cand_local, base, cycles, addresses, prev, prev_cyc
    ) -> list[int]:
        """Segmented vectorised hysteresis — bit-identical to the oracle.

        The per-event loop's state only changes character at *commits*
        (which move the RAW window and the refractory origin) and at
        candidacy expiries; between those points every decision is a
        pure function of per-event arrays.  So: qualify all candidates
        for the current (start, last-commit) state at once, locate the
        candidacy window with a ``searchsorted`` on the expiry horizon,
        and find the committing event — the first at which the running
        count of *distinct* supporting addresses reaches
        ``min_support`` — with one cumulative sum.  The outer Python
        loop advances once per commit or expiry, not once per event.
        """
        new: list[int] = []
        if not len(cand_local):
            return new
        g = base + cand_local
        pv = prev[cand_local]
        pc = prev_cyc[cand_local]
        cy = cycles[cand_local]
        ad = addresses[cand_local]
        ncand = len(cand_local)
        pos = 0
        qual = openable = None
        qpos = 0
        while pos < ncand:
            if qual is None:
                qual = (pv[pos:] >= self._start) & (
                    pc[pos:]
                    >= self._last_commit_cycle + self.producer_refractory
                )
                openable = qual & (
                    cy[pos:] >= self._last_commit_cycle + self.refractory
                )
                qpos = pos
            if self._cand_index is None:
                rel = np.flatnonzero(openable[pos - qpos :])
                if not len(rel):
                    break
                j = pos + int(rel[0])
                self._cand_index = int(g[j])
                self._cand_cycle = int(cy[j])
                self._cand_support = {int(ad[j])}
                pos = j + 1
                if len(self._cand_support) >= self.min_support:
                    new.append(self._commit())
                    qual = None
                    continue
            # Candidacy window: candidate events up to the expiry horizon.
            wend = pos + int(
                np.searchsorted(
                    g[pos:], self._cand_index + self.expiry, side="right"
                )
            )
            qw = np.flatnonzero(qual[pos - qpos : wend - qpos]) + pos
            if len(qw):
                adq = ad[qw]
                known = np.zeros(len(adq), dtype=bool)
                for s in self._cand_support:
                    known |= adq == s
                order = np.argsort(adq, kind="stable")
                first_sorted = np.empty(len(adq), dtype=bool)
                first_sorted[0] = True
                srt = adq[order]
                np.not_equal(srt[1:], srt[:-1], out=first_sorted[1:])
                first_occ = np.zeros(len(adq), dtype=bool)
                first_occ[order] = first_sorted
                fresh = first_occ & ~known
                support = len(self._cand_support) + np.cumsum(fresh)
                hits = np.flatnonzero(support >= self.min_support)
                if len(hits):
                    new.append(self._commit())
                    qual = None
                    pos = int(qw[hits[0]]) + 1
                    continue
                self._cand_support.update(int(a) for a in adq[fresh])
            if wend < ncand:
                # Support never arrived inside the window: expire, and
                # reconsider the expiring event itself as a fresh start.
                self._cand_index = None
                self._cand_support = set()
                pos = wend
            else:
                pos = ncand  # window extends past this chunk: carry on
        return new

    def _commit(self) -> int:
        committed = self._cand_index
        self._start = committed
        self._last_commit_cycle = self._cand_cycle
        self._boundaries.append(committed)
        self._boundary_cycles.append(self._cand_cycle)
        self._cand_index = None
        self._cand_support = set()
        return committed


def consensus_boundaries(
    runs: list[list[int]], quorum: int, tol: int
) -> list[int]:
    """Cross-run boundary consensus in cycle space.

    ``runs[r]`` is run ``r``'s boundary cycle list.  Boundaries within
    ``tol`` cycles of each other are clustered; a cluster supported by
    at least ``quorum`` distinct runs contributes its median cycle.
    Single-run artefacts (a forged RAW edge is a product of one run's
    noise draw) fail the quorum and vanish.

    One sort-and-sweep pass: boundaries are stamped with their run,
    sorted once by cycle, split into clusters where the sorted gap
    exceeds ``tol``, and every cluster's distinct-run count and median
    fall out of segment reductions — no per-cluster rescans.
    """
    if quorum < 1:
        raise ConfigError(f"quorum must be >= 1, got {quorum}")
    if tol < 0:
        raise ConfigError(f"tol must be >= 0, got {tol}")
    cycles = np.array(
        [c for run in runs for c in run], dtype=np.int64
    )
    if not len(cycles):
        return []
    run_ids = np.repeat(
        np.arange(len(runs), dtype=np.int64),
        [len(run) for run in runs],
    )
    order = np.argsort(cycles, kind="stable")
    cycles = cycles[order]
    run_ids = run_ids[order]
    cluster_id = np.zeros(len(cycles), dtype=np.int64)
    np.cumsum(np.diff(cycles) > tol, out=cluster_id[1:])
    starts = np.concatenate(
        ([0], np.flatnonzero(np.diff(cluster_id)) + 1)
    )
    ends = np.append(starts[1:], len(cycles))
    # Distinct runs per cluster: first occurrence of each (cluster, run)
    # pair under a secondary sort by run.
    pair_order = np.lexsort((run_ids, cluster_id))
    pc, pr = cluster_id[pair_order], run_ids[pair_order]
    first = np.empty(len(pc), dtype=bool)
    first[0] = True
    first[1:] = (pc[1:] != pc[:-1]) | (pr[1:] != pr[:-1])
    support = np.bincount(pc[first], minlength=len(starts))
    # Median per cluster from the already-sorted cycles; even-sized
    # clusters truncate the midpoint average like ``int(np.median(...))``.
    size = ends - starts
    mid_hi = cycles[starts + size // 2]
    mid_lo = cycles[starts + (size - 1) // 2]
    medians = (mid_lo + mid_hi) // 2
    return [int(m) for m in medians[support >= quorum]]


@dataclass(frozen=True)
class BoundaryScore:
    """Precision/recall of recovered boundaries against ground truth."""

    matched: int
    predicted: int
    truth: int

    @property
    def precision(self) -> float:
        return self.matched / self.predicted if self.predicted else 0.0

    @property
    def recall(self) -> float:
        return self.matched / self.truth if self.truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if p + r else 0.0


def boundary_f1(
    predicted: list[int], truth: list[int], tol: int
) -> BoundaryScore:
    """Greedy one-to-one matching of boundary cycles within ``tol``."""
    pred = sorted(predicted)
    true = sorted(truth)
    matched = 0
    j = 0
    for p in pred:
        while j < len(true) and true[j] < p - tol:
            j += 1
        if j < len(true) and abs(true[j] - p) <= tol:
            matched += 1
            j += 1
    return BoundaryScore(
        matched=matched, predicted=len(pred), truth=len(true)
    )
