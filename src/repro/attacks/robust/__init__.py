"""Noise-robust attack estimators for the measurement channel.

The paper's attacks assume a perfect side-channel tap; this package
makes them survive a realistic one (see :mod:`repro.channel`).  Three
pieces, one per leak:

* :class:`VotingChannel` — repeat-and-vote querying for the weight
  attack's counter channel, with a principled repeat budget
  (:func:`required_repeats`) and adaptive escalation;
* :class:`RobustRawBoundaryTracker` / :func:`recover_boundaries` —
  hysteresis + multi-run consensus boundary detection for the
  structure attack's trace channel;
* :func:`calibrate_channel` — attacker-side estimation of the channel
  parameters (counter sigma and quantum, trace loss+dup rate) from
  repeated null measurements, so the above can be sized from data.

All of it speaks only the :class:`~repro.device.DeviceSession`
surface; on an ideal channel every estimator degrades gracefully to
the exact paper behaviour (single measurement, single-event RAW rule).
"""

from repro.attacks.robust.boundary import (
    BoundaryScore,
    RobustRawBoundaryTracker,
    boundary_f1,
    consensus_boundaries,
)
from repro.attacks.robust.calibrate import ChannelCalibration, calibrate_channel
from repro.attacks.robust.structure import (
    BoundaryRecovery,
    RawBoundaryCycleSink,
    RobustStructureResult,
    boundary_cycles_from_trace,
    recover_boundaries,
)
from repro.attacks.robust.vote import (
    VotingChannel,
    required_repeats,
    vote_confidence,
)

__all__ = [
    "VotingChannel",
    "required_repeats",
    "vote_confidence",
    "RobustRawBoundaryTracker",
    "BoundaryRecovery",
    "RawBoundaryCycleSink",
    "RobustStructureResult",
    "recover_boundaries",
    "boundary_cycles_from_trace",
    "consensus_boundaries",
    "boundary_f1",
    "BoundaryScore",
    "ChannelCalibration",
    "calibrate_channel",
]
