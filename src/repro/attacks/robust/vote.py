"""Repeat-and-vote querying for the weight attack under counter noise.

Algorithm 2's binary search compares a measured nnz count against a
modelled one; a single noisy read with sigma around 1 flips that
comparison more than half the time (``P(|N(0,1)| > 0.5) ≈ 0.62``), so
the naive attack collapses under even mild counter noise — the effect
the channel ablation bench quantifies.  CSI NN's answer (Batina et
al.) is brute statistical: measure each point many times and vote.

:class:`VotingChannel` wraps a :class:`~repro.device.DeviceSession`
and re-measures every channel query ``repeats`` times through the
session's repetition index (fresh content-keyed noise per repeat),
returning the consensus count — the per-element vote winner: the
median (the default — counter read-outs are clipped at zero, and the
median is immune to the clip bias that shifts the mean of
near-zero counts upward) or the rounded mean (slightly tighter for
counts far from the clip).  The consensus count is correct
whenever the averaged noise stays below half a count, so the error
probability per decision is ``P(|N(0, σ/√R)| > 1/2)`` — driving the
repeat budget ``R`` from a target per-decision confidence is what
:func:`required_repeats` does, and what an adaptive wrapper tunes
per query from the measured spread when no calibrated sigma is given.

Every extra measurement is charged to the session's
:class:`~repro.device.QueryLedger` as a normal channel query *and*
recorded under ``repeat_queries``, so attack-cost reports separate
noise overhead from intrinsic query complexity.

Because repeats ride the session's content-keyed noise, the wrapper
preserves the parallel-determinism contract: a forked
:class:`VotingChannel` (one per weight-attack shard) observes the same
measurement values the serial run would, so recovered ratios are
bit-identical at any worker count — noise or no noise.
"""

from __future__ import annotations

import math
from statistics import NormalDist

import numpy as np

from repro.device import DeviceSession
from repro.errors import ConfigError

__all__ = ["VotingChannel", "required_repeats", "vote_confidence"]

# Default per-decision confidence: a full AlexNet CONV1 recovery makes
# ~10^5 noisy comparisons, so 1 - 1e-7 keeps the whole attack's
# failure probability around a percent.
_DEFAULT_CONFIDENCE = 1.0 - 1e-7


# Asymptotic variance inflation of the sample median relative to the
# mean for Gaussian noise: the median needs pi/2 times the repeats for
# the same per-decision confidence.
_STAT_EFFICIENCY = {"mean": 1.0, "median": math.pi / 2.0}


def required_repeats(
    sigma: float,
    confidence: float = _DEFAULT_CONFIDENCE,
    delta: float = 1.0,
    statistic: str = "median",
) -> int:
    """Measurements needed to resolve a count step of ``delta``.

    The consensus errs when the estimator's deviation exceeds
    ``delta/2``; requiring that with probability ``confidence`` gives
    ``R >= eff * (2 z sigma / delta)^2`` with ``z`` the two-sided
    normal quantile of ``confidence`` and ``eff`` the statistic's
    variance inflation (1 for the mean, pi/2 for the median).
    """
    if sigma <= 0.0:
        return 1
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    eff = _STAT_EFFICIENCY[statistic]
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    return max(1, math.ceil(eff * (2.0 * z * sigma / delta) ** 2))


def vote_confidence(
    repeats: int,
    sigma: float,
    delta: float = 1.0,
    statistic: str = "median",
) -> float:
    """Per-decision confidence of an ``repeats``-read consensus."""
    if sigma <= 0.0:
        return 1.0
    eff = _STAT_EFFICIENCY[statistic]
    return math.erf(
        delta * math.sqrt(repeats / eff) / (2.0 * sigma * math.sqrt(2.0))
    )


class VotingChannel:
    """A session wrapper measuring every query by repeated vote.

    Exposes the session's channel surface (``query``, ``query_batch``,
    ``query_per_filter``, ``fork`` and the public device facts), so it
    drops into :class:`~repro.attacks.weights.WeightAttack` — or any
    consumer of the session surface — unchanged.

    Args:
        session: the underlying (noisy) device session.
        repeats: base measurements per query (the floor of the budget).
        sigma: calibrated counter sigma; when given, the repeat count
            is fixed at ``max(repeats, required_repeats(sigma))`` and
            no per-query adaptation happens — deterministic cost, the
            mode :func:`~repro.attacks.robust.calibrate_channel` feeds.
        confidence: target per-decision confidence.
        max_repeats: adaptive-mode budget cap per query (default
            ``8 * repeats``); a calibrated sigma is trusted, so fixed
            mode is not capped by it.
        statistic: ``"median"`` (clip-robust, the default) or
            ``"mean"`` (rounded mean).
    """

    def __init__(
        self,
        session: DeviceSession,
        repeats: int = 9,
        *,
        sigma: float | None = None,
        confidence: float = _DEFAULT_CONFIDENCE,
        max_repeats: int | None = None,
        statistic: str = "median",
    ) -> None:
        if repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {repeats}")
        if statistic not in ("mean", "median"):
            raise ConfigError(
                f"statistic must be 'mean' or 'median', got {statistic!r}"
            )
        self._session = session
        self.repeats = int(repeats)
        self.sigma = sigma
        self.confidence = confidence
        self.max_repeats = (
            int(max_repeats) if max_repeats is not None else 8 * self.repeats
        )
        if self.max_repeats < self.repeats:
            raise ConfigError("max_repeats must be >= repeats")
        self.statistic = statistic
        if sigma is not None:
            # A calibrated clean channel needs no repetition at all —
            # the wrapper degrades to the exact single-shot attack.
            self._fixed = (
                1
                if sigma <= 0.0
                else max(
                    self.repeats,
                    required_repeats(sigma, confidence, statistic=statistic),
                )
            )
        else:
            self._fixed = None
        # Introspection: rounds taken, escalations, last vote quality.
        self.measurements = 0
        self.escalations = 0
        self.last_repeats = 0
        self.last_confidence = 1.0

    # -- the vote ----------------------------------------------------------
    def _consensus(self, stack: np.ndarray) -> np.ndarray:
        if self.statistic == "median":
            return np.rint(np.median(stack, axis=0)).astype(np.int64)
        return np.rint(stack.mean(axis=0)).astype(np.int64)

    def _measure(self, take) -> np.ndarray:
        """Repeat ``take(rep)`` to the configured confidence and vote."""
        n0 = self._fixed if self._fixed is not None else self.repeats
        rows = [take(r) for r in range(n0)]
        if self._fixed is None and self.max_repeats > len(rows):
            # Adaptive budget: estimate the spread from the measured
            # rows and escalate until the consensus is confident (or
            # the cap is hit).  The estimate is a deterministic
            # function of content-keyed measurements, so serial and
            # sharded runs escalate identically.
            while True:
                sigma_hat = float(
                    np.asarray(rows).std(axis=0, ddof=1).max()
                ) if len(rows) > 1 else 0.0
                need = required_repeats(
                    sigma_hat, self.confidence, statistic=self.statistic
                )
                target = min(self.max_repeats, need)
                if target <= len(rows):
                    break
                self.escalations += 1
                rows.extend(take(r) for r in range(len(rows), target))
        stack = np.asarray(rows, dtype=np.int64)
        self._session.ledger.record_repeats(len(rows) - 1)
        self.measurements += 1
        self.last_repeats = len(rows)
        sigma_known = (
            self.sigma
            if self.sigma is not None
            else (
                float(stack.std(axis=0, ddof=1).max())
                if len(rows) > 1
                else 0.0
            )
        )
        self.last_confidence = vote_confidence(
            len(rows), sigma_known, statistic=self.statistic
        )
        return self._consensus(stack)

    # -- channel surface ---------------------------------------------------
    def query(self, pixels, values) -> np.ndarray:
        return self._measure(
            lambda r: self._session.query(pixels, values, rep=r)
        )

    def query_batch(self, pixels, values) -> np.ndarray:
        return self._measure(
            lambda r: self._session.query_batch(pixels, values, rep=r)
        )

    def query_per_filter(self, pixels, values) -> np.ndarray:
        return self._measure(
            lambda r: self._session.query_per_filter(pixels, values, rep=r)
        )

    def fork(self, index: int | None = None) -> "VotingChannel":
        """A voting wrapper over a forked session (one per shard)."""
        return VotingChannel(
            self._session.fork(index),
            self.repeats,
            sigma=self.sigma,
            confidence=self.confidence,
            max_repeats=self.max_repeats,
            statistic=self.statistic,
        )

    def set_threshold(self, threshold: float) -> None:
        self._session.set_threshold(threshold)

    # -- pass-through device facts ----------------------------------------
    @property
    def session(self) -> DeviceSession:
        return self._session

    def __getattr__(self, name: str):
        # Everything not overridden (per_plane, input_shape, d_ofm,
        # input_range, ledger, queries, threshold, ...) is the
        # session's business.  Dunders/privates stay local so attribute
        # errors during construction cannot recurse.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._session, name)
